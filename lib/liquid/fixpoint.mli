(** Liquid constraint solving by predicate abstraction: the paper's
    [Solve]/[Weaken] fixpoint with a dependency-directed worklist,
    followed by the final check of concrete obligations. *)

open Liquid_logic

(** Shared with {!Constr}, so a solver result is directly a
    {!Constr.solution}. *)
module KMap = Constr.KMap

type failure = {
  f_origin : Constr.origin;
  f_goal : Pred.t; (* the unprovable obligation *)
  f_cex : (string * int) list; (* falsifying values, when available *)
}

type stats = {
  mutable iterations : int;
  mutable implication_checks : int;
  mutable initial_candidates : int;
  mutable skipped_rechecks : int;
      (* instances retained without a solver call because no κ in their
         recorded dependency set weakened (incremental engine only) *)
  mutable solve_time : float; (* seconds in the weakening loop *)
  mutable check_time : float; (* seconds checking concrete obligations *)
}

type result = {
  solution : Pred.t list KMap.t;
  failures : failure list;
  solver_stats : stats;
  dead_quals : string list;
      (* qualifier patterns with at least one initial instance, none of
         which survived weakening in any κ *)
}

(** Solve the constraint system.  [quals] are the qualifier patterns;
    [consts] are mined integer literals offered to placeholders.
    [incremental] (default [true]) selects the incremental weakening
    engine — compiled antecedents with per-κ invalidation, re-checking
    only instances whose recorded κ-dependency set weakened; [false]
    runs the naive reference engine, which re-embeds and re-checks
    everything on each pop.  Both compute the same solution and
    failures, in the same order. *)
val solve :
  ?quals:Qualifier.t list ->
  ?consts:int list ->
  ?incremental:bool ->
  Constr.wf list ->
  Constr.sub list ->
  result

(** Replace every κ by the conjunction of its solution. *)
val apply_solution : Pred.t list KMap.t -> Rtype.t -> Rtype.t
