(** Liquid constraint solving by predicate abstraction: the paper's
    [Solve]/[Weaken] fixpoint with a dependency-directed worklist,
    followed by the final check of concrete obligations. *)

open Liquid_logic

(** Shared with {!Constr}, so a solver result is directly a
    {!Constr.solution}. *)
module KMap = Constr.KMap

module SSet : Set.S with type elt = string

type failure = {
  f_sub_id : int; (* the failing constraint, for explanation lookups *)
  f_origin : Constr.origin;
  f_goal : Pred.t; (* the unprovable obligation *)
  f_cex : (string * Liquid_smt.Solver.cex_value) list;
      (* falsifying values, when available *)
}

type stats = {
  mutable iterations : int;
  mutable implication_checks : int;
  mutable initial_candidates : int;
  mutable skipped_rechecks : int;
      (* instances retained without a solver call because no κ in their
         recorded dependency set weakened (incremental engine only) *)
  mutable alpha_collapsed : int;
      (* instances collapsed by orientation-level dedup at instantiation *)
  mutable pruned_dedup : int; (* parked by the pre-fixpoint prune phases *)
  mutable pruned_refuted : int;
  mutable pruned_subsumed : int;
  mutable reinstated : int;
      (* parked/weakened instances restored by the post-fixpoint
         reinstatement pass *)
  mutable solve_time : float; (* seconds in the weakening loop *)
  mutable check_time : float; (* seconds checking concrete obligations *)
  mutable prune_time : float; (* seconds in the pre-fixpoint prune pass *)
  mutable reinstate_time : float; (* seconds in the reinstatement pass *)
}

type result = {
  solution : Pred.t list KMap.t;
  failures : failure list;
  solver_stats : stats;
  dead_quals : string list;
      (* qualifier patterns with at least one initial instance, none of
         which survived weakening in any κ *)
}

(** {1 Solve units}

    The engine solves {e units} — subsets of the constraint system whose
    κs are closed under mutual dependency (see {!Constr.partition_plan}).
    All engine state (worklist, assignment, compiled-constraint cache,
    counters) is local to one {!solve_unit} call; a multi-unit run merges
    the resulting {!partial}s with the pure functions below.  A
    whole-system run is the special case of a single unit with an empty
    base, which is exactly what {!solve} does. *)

(** Candidate assignment: per κ, the surviving qualifier instances, each
    tagged with the qualifier-pattern names that produced it. *)
type candidates = (Pred.t * SSet.t) list KMap.t

(** All-zero counters, for accumulating merged stats. *)
val fresh_stats : unit -> stats

(** Initial (strongest) assignment from the well-formedness constraints:
    all qualifier instances scoping correctly per κ, intersected over
    the κ's wf environments.  [collapsed] is incremented once per
    instance collapsed by orientation-level dedup at instantiation. *)
val init_assignment :
  ?consts:int list ->
  ?collapsed:int ref ->
  Qualifier.t list ->
  Constr.wf list ->
  candidates

(** Movement of the global {!Solver.stats} counters during one
    {!solve_unit} call, so a parent process can fold a worker's solver
    activity into its own counters. *)
type smt_delta = {
  d_queries : int;
  d_cache_hits : int;
  d_sat_checks : int;
  d_unknowns : int;
}

(** Result of solving one unit: final assignment of its κs, concrete
    failures keyed by [sub_id] (for deterministic cross-unit ordering),
    per-unit counters, and the SMT-counter delta. *)
type partial = {
  pr_solution : candidates;
  pr_failures : (int * failure) list;
  pr_stats : stats;
  pr_smt : smt_delta;
}

(** Version tag of the marshalled [partial] payload, for fingerprints of
    persistent partition-cache entries ({!Liquid_cache.Store}): a
    [partial] written under one tag is never read under another.  Bump
    on any semantic change to what a partial represents. *)
val partial_version : string

(** Solve one unit to fixpoint and check its concrete obligations.
    [base] holds the final solutions of every upstream κ read but not
    owned by this unit; [init] is the initial assignment of the unit's
    own κs.  [prune_wf] (per-κ well-formedness facts, {!Prune.wf_facts})
    enables the pre-fixpoint prune analysis and the post-fixpoint
    reinstatement pass; the final solution is unchanged, only the work
    to reach it shrinks. *)
val solve_unit :
  ?incremental:bool ->
  ?prune_wf:Pred.t list KMap.t ->
  base:Constr.solution ->
  init:candidates ->
  Constr.sub list ->
  partial

(** {1 Merging} — pure; units own disjoint κ sets. *)

val merge_stats : stats -> stats -> stats
val merge_solutions : candidates -> candidates -> candidates

(** Qualifier patterns with an initial instance in some κ of [initial],
    none of which survived into [final]. *)
val dead_qualifiers : initial:candidates -> final:candidates -> string list

(** Re-intern a partial that crossed a process boundary (unmarshalled
    values are physically foreign to the local hash-cons tables; see
    {!Pred.rehasher}). *)
val rehash_partial : partial -> partial

(** {1 Whole-system solving} *)

(** Solve the constraint system as one unit.  [quals] are the qualifier
    patterns; [consts] are mined integer literals offered to
    placeholders.  [incremental] (default [true]) selects the
    incremental weakening engine — compiled antecedents with per-κ
    invalidation, re-checking only instances whose recorded κ-dependency
    set weakened; [false] runs the naive reference engine, which
    re-embeds and re-checks everything on each pop.  Both compute the
    same solution and failures, in the same order.  [prune] (default
    [false]) runs the pre-fixpoint qualifier-space prune and the
    post-fixpoint reinstatement (see {!Prune}). *)
val solve :
  ?quals:Qualifier.t list ->
  ?consts:int list ->
  ?incremental:bool ->
  ?prune:bool ->
  Constr.wf list ->
  Constr.sub list ->
  result

(** Replace every κ by the conjunction of its solution. *)
val apply_solution : Pred.t list KMap.t -> Rtype.t -> Rtype.t

(** {1 Explanation hooks} — the exact ingredients of the final concrete
    pass, exported so the explanation engine can rebuild (and minimize)
    a failing obligation's query under the final solution. *)

(** Logical value standing for [ν] at a given sort. *)
val vv_value : Sort.t -> Pred.value

(** Antecedent of a constraint under [lookup]: (prunable binding facts,
    verbatim-kept lhs preds @ guards) — precisely the [(hyps, kept)]
    pair the concrete pass hands to {!Liquid_smt.Solver.check_valid}. *)
val hypotheses :
  (Rtype.kvar -> Pred.t list) -> Constr.sub -> Pred.t list * Pred.t list
