(** Presentation-quality refinement types.

    Solved types are correct but noisy: binders carry alpha-renaming
    suffixes ([x#297]), type variables carry huge internal ids, and κ
    solutions list many mutually redundant qualifier instances
    ([v = y && v >= y && v <= y && ...]).  This module cleans a type for
    display:

    - binders are renamed back to their source names when unambiguous;
    - type variables are renumbered 'a, 'b, ... per type;
    - each refinement conjunction is minimized: conjuncts implied by the
      rest (checked with the SMT solver) are dropped, greedily.

    Display cleaning never changes the denotation of a type: renamings
    are capture-free by construction and minimization only removes
    conjuncts that are logically implied. *)

open Liquid_common
open Liquid_logic

(* -- Binder renaming ------------------------------------------------------- *)

let base_name (x : Ident.t) : string =
  let s = Ident.to_string x in
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> ( match String.index_opt s '.' with
    | Some _ when Ident.is_internal x -> "_"
    | _ -> s)

(** Collect the [Fun] binders of a type, in order. *)
let rec binders acc = function
  | Rtype.Fun (x, t1, t2) -> binders (binders (x :: acc) t1) t2
  | Rtype.Tuple ts -> List.fold_left binders acc ts
  | Rtype.List (t, _) | Rtype.Array (t, _) -> binders acc t
  | Rtype.Base _ | Rtype.Data _ | Rtype.Tyvar _ -> acc

(** Renaming of binders to their base names, skipping collisions.
    Internal binders (compiler-introduced argument names) that no
    refinement mentions display as ["_"]. *)
let display_renaming (t : Rtype.t) : Ident.t Ident.Map.t =
  let bs = List.rev (binders [] t) in
  let mentioned = Rtype.free_prog_vars t in
  let taken = Hashtbl.create 8 in
  List.fold_left
    (fun m x ->
      if Ident.is_internal x && not (List.exists (Ident.equal x) mentioned)
      then Ident.Map.add x (Ident.of_string "_") m
      else
        let b = base_name x in
        if b = "_" || Hashtbl.mem taken b then m
        else begin
          Hashtbl.add taken b ();
          if Ident.equal x (Ident.of_string b) then m
          else Ident.Map.add x (Ident.of_string b) m
        end)
    Ident.Map.empty bs

let rec rename_type (m : Ident.t Ident.Map.t) (t : Rtype.t) : Rtype.t =
  let rename_ident x =
    match Ident.Map.find_opt x m with Some y -> y | None -> x
  in
  let rename_refinement (r : Rtype.refinement) : Rtype.refinement =
    let rename_pred p =
      (* rename every free variable occurrence structurally *)
      (* rebuilds go through the verbatim [make] constructors so the
         displayed shape is preserved exactly (no re-simplification) *)
      let rec go_term (t : Term.t) =
        match Term.view t with
        | Term.Var (x, s) -> Term.make (Term.Var (rename_ident x, s))
        | Term.Int _ -> t
        | Term.App (f, ts) -> Term.make (Term.App (f, List.map go_term ts))
        | Term.Neg t -> Term.make (Term.Neg (go_term t))
        | Term.Add (a, b) -> Term.make (Term.Add (go_term a, go_term b))
        | Term.Sub (a, b) -> Term.make (Term.Sub (go_term a, go_term b))
        | Term.Mul (a, b) -> Term.make (Term.Mul (go_term a, go_term b))
      in
      let rec go (p : Pred.t) =
        match Pred.view p with
        | Pred.True | Pred.False -> p
        | Pred.Atom (a, r, b) -> Pred.make (Pred.Atom (go_term a, r, go_term b))
        | Pred.Bvar x -> Pred.make (Pred.Bvar (rename_ident x))
        | Pred.Not p -> Pred.make (Pred.Not (go p))
        | Pred.And ps -> Pred.make (Pred.And (List.map go ps))
        | Pred.Or ps -> Pred.make (Pred.Or (List.map go ps))
        | Pred.Imp (p, q) -> Pred.make (Pred.Imp (go p, go q))
        | Pred.Iff (p, q) -> Pred.make (Pred.Iff (go p, go q))
      in
      go p
    in
    { r with Rtype.preds = rename_pred r.Rtype.preds }
  in
  match t with
  | Rtype.Base (b, r) -> Rtype.Base (b, rename_refinement r)
  | Rtype.Fun (x, t1, t2) ->
      Rtype.Fun (rename_ident x, rename_type m t1, rename_type m t2)
  | Rtype.Tuple ts -> Rtype.Tuple (List.map (rename_type m) ts)
  | Rtype.List (t, r) -> Rtype.List (rename_type m t, rename_refinement r)
  | Rtype.Array (t, r) -> Rtype.Array (rename_type m t, rename_refinement r)
  | Rtype.Data (d, r) -> Rtype.Data (d, rename_refinement r)
  | Rtype.Tyvar (k, r) -> Rtype.Tyvar (k, rename_refinement r)

(* -- Tyvar renumbering ------------------------------------------------------- *)

let renumber_tyvars (t : Rtype.t) : Rtype.t =
  let mapping = Hashtbl.create 4 in
  let fresh = ref 0 in
  let renumber k =
    match Hashtbl.find_opt mapping k with
    | Some k' -> k'
    | None ->
        let k' = !fresh in
        incr fresh;
        Hashtbl.add mapping k k';
        k'
  in
  let rec go = function
    | Rtype.Base _ as t -> t
    | Rtype.Fun (x, t1, t2) ->
        let t1' = go t1 in
        let t2' = go t2 in
        Rtype.Fun (x, t1', t2')
    | Rtype.Tuple ts -> Rtype.Tuple (List.map go ts)
    | Rtype.List (t, r) -> Rtype.List (go t, r)
    | Rtype.Array (t, r) -> Rtype.Array (go t, r)
    | Rtype.Data _ as t -> t
    | Rtype.Tyvar (k, r) -> Rtype.Tyvar (renumber k, r)
  in
  go t

(* -- Conjunction minimization --------------------------------------------------- *)

(** Drop conjuncts implied by the remaining ones (greedy, using the SMT
    solver).  Bounded, so pathological conjunctions don't stall
    reporting. *)
let minimize_conjunction (p : Pred.t) : Pred.t =
  match Pred.view p with
  | Pred.And ps when List.length ps <= 24 ->
      let rec loop kept = function
        | [] -> List.rev kept
        | q :: rest ->
            let others = List.rev_append kept rest in
            if
              others <> []
              && Liquid_smt.Solver.check_valid others q = Liquid_smt.Solver.Valid
            then loop kept rest
            else loop (q :: kept) rest
      in
      Pred.conj (loop [] ps)
  | _ -> p

let rec minimize_type (t : Rtype.t) : Rtype.t =
  let refinement (r : Rtype.refinement) =
    { r with Rtype.preds = minimize_conjunction r.Rtype.preds }
  in
  match t with
  | Rtype.Base (b, r) -> Rtype.Base (b, refinement r)
  | Rtype.Fun (x, t1, t2) -> Rtype.Fun (x, minimize_type t1, minimize_type t2)
  | Rtype.Tuple ts -> Rtype.Tuple (List.map minimize_type ts)
  | Rtype.List (t, r) -> Rtype.List (minimize_type t, refinement r)
  | Rtype.Array (t, r) -> Rtype.Array (minimize_type t, refinement r)
  | Rtype.Data (d, r) -> Rtype.Data (d, refinement r)
  | Rtype.Tyvar (k, r) -> Rtype.Tyvar (k, refinement r)

(* -- Entry point ------------------------------------------------------------------ *)

(** Clean a solved type for display. *)
let display (t : Rtype.t) : Rtype.t =
  let t = minimize_type t in
  let t = rename_type (display_renaming t) t in
  renumber_tyvars t
