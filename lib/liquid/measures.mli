(** Elaboration of surface [measure] declarations into the measure table
    ({!Liquid_logic.Measure}).  Call {!load} once per run, after
    {!Liquid_lang.Declcheck} has accepted the declaration unit. *)

open Liquid_lang

(** Translate one equation body (binders resolved to argument
    positions).
    @raise Invalid_argument on bodies {!Liquid_lang.Declcheck} rejects. *)
val body_of_mterm : string option list -> Ast.mterm -> Liquid_logic.Measure.body

val eqn_of_meqn : Ast.meqn -> Liquid_logic.Measure.eqn

(** Reset the measure table to the built-ins and register every declared
    measure, in source order. *)
val load : Ast.decls -> unit

(** Stable digest of the declaration unit (types and measures) for cache
    keys; [""] when there are no declarations. *)
val fingerprint : Ast.decls -> string
