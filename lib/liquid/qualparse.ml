(** Shared surface syntax for refinement predicates.

    Both qualifier declarations ({!Qualifier}) and refinement-type
    specifications ({!Spec}) embed the same predicate language: boolean
    combinations of comparisons over terms built from [v], literals,
    program variables, placeholders ([_], [_A]), arithmetic, and the
    registered measures ([len], [llen], user measures; see
    {!Liquid_logic.Measure}).  This module provides the raw (sort-agnostic)
    AST, a token-stream parser for it, and sorted elaboration into
    {!Liquid_logic.Pred}. *)

open Liquid_common
open Liquid_logic
open Liquid_lang

(* -- Raw AST --------------------------------------------------------------- *)

type rterm =
  | Rint of int
  | Rvar of string (* "v", a placeholder "*k"/"*A", or a program variable *)
  | Rmeasure of string * rterm (* a registered measure applied to a term *)
  | Rneg of rterm
  | Radd of rterm * rterm
  | Rsub of rterm * rterm
  | Rmul of rterm * rterm

type rpred =
  | Rtrue
  | Rfalse
  | Ratom of rterm * Pred.brel * rterm
  | Rbool of rterm (* a bare term in predicate position: boolean variable *)
  | Rnot of rpred
  | Rand of rpred * rpred
  | Ror of rpred * rpred
  | Rimp of rpred * rpred
  | Riff of rpred * rpred

let is_placeholder s = String.length s > 0 && s.[0] = '*'

let rec rterm_vars acc = function
  | Rint _ -> acc
  | Rvar x -> x :: acc
  | Rmeasure (_, t) | Rneg t -> rterm_vars acc t
  | Radd (a, b) | Rsub (a, b) | Rmul (a, b) -> rterm_vars (rterm_vars acc a) b

let rec rpred_vars acc = function
  | Rtrue | Rfalse -> acc
  | Ratom (a, _, b) -> rterm_vars (rterm_vars acc a) b
  | Rbool t -> rterm_vars acc t
  | Rnot p -> rpred_vars acc p
  | Rand (a, b) | Ror (a, b) | Rimp (a, b) | Riff (a, b) ->
      rpred_vars (rpred_vars acc a) b

(* -- Token streams ------------------------------------------------------------ *)

exception Parse_error of string

type stream = {
  lexbuf : Lexing.lexbuf;
  mutable tok : Token.t;
  mutable prev_end : Lexing.position; (* end of the last consumed token *)
  mutable anon : int; (* numbering for anonymous placeholders *)
}

let make lexbuf =
  let s =
    { lexbuf; tok = Token.EOF; prev_end = Lexing.dummy_pos; anon = 0 }
  in
  s.tok <- Lexer.token lexbuf;
  s

let of_string ?file str =
  let lexbuf = Lexing.from_string str in
  (match file with Some f -> Lexing.set_filename lexbuf f | None -> ());
  make lexbuf

let peek st = st.tok

(** Start position of the current (peeked) token. *)
let tok_start st = Lexing.lexeme_start_p st.lexbuf

(** End position of the most recently consumed token. *)
let last_end st = st.prev_end

let advance st =
  st.prev_end <- Lexing.lexeme_end_p st.lexbuf;
  st.tok <- Lexer.token st.lexbuf

let expect st t what =
  if st.tok = t then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found '%s'" what
            (Token.to_string st.tok)))

let reset_anon st = st.anon <- 0

(* -- Parsing -------------------------------------------------------------------- *)

let ident_or_placeholder s =
  if String.length s >= 2 && s.[0] = '_' then
    (* _A style named placeholder *)
    Rvar ("*" ^ String.sub s 1 (String.length s - 1))
  else Rvar s

(* term grammar: additive > multiplicative > atoms *)
let rec parse_term st =
  let t = ref (parse_mul st) in
  let continue_ = ref true in
  while !continue_ do
    match st.tok with
    | Token.PLUS ->
        advance st;
        t := Radd (!t, parse_mul st)
    | Token.MINUS ->
        advance st;
        t := Rsub (!t, parse_mul st)
    | _ -> continue_ := false
  done;
  !t

and parse_mul st =
  let t = ref (parse_atom_term st) in
  let continue_ = ref true in
  while !continue_ do
    match st.tok with
    | Token.STAR ->
        advance st;
        t := Rmul (!t, parse_atom_term st)
    | _ -> continue_ := false
  done;
  !t

and parse_atom_term st =
  match st.tok with
  | Token.INT n ->
      advance st;
      Rint n
  | Token.MINUS ->
      advance st;
      Rneg (parse_atom_term st)
  | Token.UNDERSCORE ->
      advance st;
      st.anon <- st.anon + 1;
      Rvar (Printf.sprintf "*%d" st.anon)
  | Token.IDENT s when Measure.find s <> None ->
      (* a registered measure name ([len], [llen], or a user measure of
         the current run) applies by juxtaposition, like [len _] *)
      advance st;
      Rmeasure (s, parse_atom_term st)
  | Token.IDENT s ->
      advance st;
      ident_or_placeholder s
  | Token.LPAREN ->
      advance st;
      let t = parse_term st in
      expect st Token.RPAREN "')'";
      t
  | t -> raise (Parse_error ("unexpected token in term: " ^ Token.to_string t))

let rec parse_pred st = parse_imp st

and parse_imp st =
  let p = parse_or st in
  if st.tok = Token.ARROW then begin
    advance st;
    Rimp (p, parse_imp st)
  end
  else p

and parse_or st =
  let p = ref (parse_and st) in
  while st.tok = Token.BARBAR do
    advance st;
    p := Ror (!p, parse_and st)
  done;
  !p

and parse_and st =
  let p = ref (parse_cmp st) in
  while st.tok = Token.AMPAMP do
    advance st;
    p := Rand (!p, parse_cmp st)
  done;
  !p

and parse_cmp st =
  match st.tok with
  | Token.TRUE ->
      advance st;
      Rtrue
  | Token.FALSE ->
      advance st;
      Rfalse
  | Token.NOT ->
      advance st;
      Rnot (parse_cmp st)
  | Token.LPAREN -> (
      (* a parenthesized predicate, or a parenthesized term comparison *)
      advance st;
      let p = parse_pred st in
      expect st Token.RPAREN "')'";
      match (p, st.tok) with
      | Rbool t, (Token.EQ | Token.NE | Token.LT | Token.LE | Token.GT | Token.GE)
        ->
          finish_cmp st t
      | _ -> p)
  | _ ->
      let t = parse_term st in
      finish_cmp st t

and finish_cmp st t =
  let rel =
    match st.tok with
    | Token.EQ -> Some Pred.Eq
    | Token.NE -> Some Pred.Ne
    | Token.LT -> Some Pred.Lt
    | Token.LE -> Some Pred.Le
    | Token.GT -> Some Pred.Gt
    | Token.GE -> Some Pred.Ge
    | _ -> None
  in
  match rel with
  | None -> Rbool t
  | Some rel ->
      advance st;
      let t2 = parse_term st in
      Ratom (t, rel, t2)

(* -- Sorted elaboration -------------------------------------------------------- *)

exception Ill_sorted

(** Build a sorted {!Term} under a variable-sort assignment; raises
    {!Ill_sorted} if impossible. *)
let rec term_of_rterm (sorts : string -> Sort.t) (t : rterm) : Term.t =
  match t with
  | Rint n -> Term.int n
  | Rvar x -> (
      match sorts x with
      | Sort.Bool -> raise Ill_sorted (* boolean vars are not terms *)
      | s -> Term.var (Ident.of_string x) s)
  | Rmeasure (m, t) ->
      let t' = term_of_rterm sorts t in
      if Sort.equal (Term.sort t') Sort.Obj then Measure.app m t'
      else raise Ill_sorted
  | Rneg t ->
      let t' = term_of_rterm sorts t in
      if Sort.equal (Term.sort t') Sort.Int then Term.neg t' else raise Ill_sorted
  | Radd (a, b) -> int_binop sorts Term.add a b
  | Rsub (a, b) -> int_binop sorts Term.sub a b
  | Rmul (a, b) -> int_binop sorts Term.mul a b

and int_binop sorts f a b =
  let a' = term_of_rterm sorts a and b' = term_of_rterm sorts b in
  if Sort.equal (Term.sort a') Sort.Int && Sort.equal (Term.sort b') Sort.Int
  then f a' b'
  else raise Ill_sorted

let rec pred_of_rpred (sorts : string -> Sort.t) (p : rpred) : Pred.t =
  match p with
  | Rtrue -> Pred.tt
  | Rfalse -> Pred.ff
  | Ratom (a, rel, b) -> (
      let a' = term_of_rterm sorts a and b' = term_of_rterm sorts b in
      let sa = Term.sort a' and sb = Term.sort b' in
      match rel with
      | Pred.Eq | Pred.Ne ->
          if Sort.equal sa sb then Pred.atom a' rel b' else raise Ill_sorted
      | _ ->
          if Sort.equal sa Sort.Int && Sort.equal sb Sort.Int then
            Pred.atom a' rel b'
          else raise Ill_sorted)
  | Rbool (Rvar x) ->
      if Sort.equal (sorts x) Sort.Bool then Pred.bvar (Ident.of_string x)
      else raise Ill_sorted
  | Rbool _ -> raise Ill_sorted
  | Rnot p -> Pred.not_ (pred_of_rpred sorts p)
  | Rand (a, b) -> Pred.and_ (pred_of_rpred sorts a) (pred_of_rpred sorts b)
  | Ror (a, b) -> Pred.or_ (pred_of_rpred sorts a) (pred_of_rpred sorts b)
  | Rimp (a, b) -> Pred.imp (pred_of_rpred sorts a) (pred_of_rpred sorts b)
  | Riff (a, b) -> Pred.iff (pred_of_rpred sorts a) (pred_of_rpred sorts b)

(* -- Printing ------------------------------------------------------------------- *)

let rec pp_rterm ppf = function
  | Rint n -> Fmt.int ppf n
  | Rvar x -> Fmt.string ppf x
  | Rmeasure (m, t) -> Fmt.pf ppf "%s %a" m pp_rterm t
  | Rneg t -> Fmt.pf ppf "(- %a)" pp_rterm t
  | Radd (a, b) -> Fmt.pf ppf "(%a + %a)" pp_rterm a pp_rterm b
  | Rsub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_rterm a pp_rterm b
  | Rmul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_rterm a pp_rterm b

let rec pp_rpred ppf = function
  | Rtrue -> Fmt.string ppf "true"
  | Rfalse -> Fmt.string ppf "false"
  | Ratom (a, rel, b) ->
      Fmt.pf ppf "%a %a %a" pp_rterm a Pred.pp_brel rel pp_rterm b
  | Rbool t -> pp_rterm ppf t
  | Rnot p -> Fmt.pf ppf "not (%a)" pp_rpred p
  | Rand (a, b) -> Fmt.pf ppf "(%a && %a)" pp_rpred a pp_rpred b
  | Ror (a, b) -> Fmt.pf ppf "(%a || %a)" pp_rpred a pp_rpred b
  | Rimp (a, b) -> Fmt.pf ppf "(%a -> %a)" pp_rpred a pp_rpred b
  | Riff (a, b) -> Fmt.pf ppf "(%a <=> %a)" pp_rpred a pp_rpred b
