(** Logical qualifiers and their instantiation into the candidate set Q*.

    A qualifier is a named boolean pattern over the value variable [v],
    literals, program variables, the measures [len]/[llen], and
    placeholders [_] (independent occurrences) or [_A], [_B] (named,
    instantiated consistently).  Concrete syntax, one declaration per
    line:

    {v
      qualif Pos(v)   : 0 <= v
      qualif UBLen(v) : v < len _
      qualif Rel(v)   : v <= _A && _A <= len _B
    v} *)

open Liquid_common
open Liquid_logic

(** Raw (sort-agnostic) pattern terms and predicates. *)

type rterm = Qualparse.rterm =
  | Rint of int
  | Rvar of string (* "v", a placeholder "*k"/"*A", or a program variable *)
  | Rmeasure of string * rterm
  | Rneg of rterm
  | Radd of rterm * rterm
  | Rsub of rterm * rterm
  | Rmul of rterm * rterm

type rpred = Qualparse.rpred =
  | Rtrue
  | Rfalse
  | Ratom of rterm * Pred.brel * rterm
  | Rbool of rterm
  | Rnot of rpred
  | Rand of rpred * rpred
  | Ror of rpred * rpred
  | Rimp of rpred * rpred
  | Riff of rpred * rpred

type t = {
  name : string;
  body : rpred;
  placeholders : string list;
  loc : Loc.t; (* of the declaration; [Loc.dummy] for programmatic quals *)
}

val make : ?loc:Loc.t -> string -> rpred -> t

exception Parse_error of string

(** Parse qualifier declarations.  [file] names the source in declaration
    locations (default ["<qualifiers>"]).
    @raise Parse_error on malformed input. *)
val parse_string : ?file:string -> string -> t list

exception Ill_sorted

(** Well-sorted instances for a template position of sort [vv_sort], with
    placeholders ranging over the (non-internal) variables of [scope]
    and, optionally, the mined integer [consts].  Instances from distinct
    qualifiers that are alpha-equivalent modulo atom orientation are
    collapsed to their first occurrence (provenance merged); [collapsed]
    is incremented once per collapse. *)
val instances :
  ?consts:int list ->
  ?collapsed:int ref ->
  t list ->
  vv_sort:Sort.t ->
  scope:(Ident.t * Sort.t) list ->
  Pred.t list

(** As {!instances}, with each instance tagged by the names of the
    qualifier patterns that produced it (dead-qualifier provenance). *)
val instances_tagged :
  ?consts:int list ->
  ?collapsed:int ref ->
  t list ->
  vv_sort:Sort.t ->
  scope:(Ident.t * Sort.t) list ->
  (Pred.t * string list) list

(** The shared default qualifier set (see the paper's Figure 1). *)
val defaults : t list

val defaults_source : string

(** Qualifiers for list-length ([llen]) reasoning; kept separate so
    array-only programs don't pay for the extra instances. *)
val list_defaults : t list

val list_defaults_source : string

(** Qualifier patterns for the named user measures (the [llen] set,
    generalized).  Call after the measure table is loaded: the pattern
    parser only recognizes registered measure names. *)
val measure_defaults : string list -> t list

val measure_defaults_source : string -> string

val pp_rterm : Format.formatter -> rterm -> unit
val pp_rpred : Format.formatter -> rpred -> unit
val pp : Format.formatter -> t -> unit
