(** Qualifier-space pruning: a pre-fixpoint static analysis shrinking
    each κ's candidate set by orientation dedup, WF-refutation, and
    sibling subsumption, over one persistent incremental solver context.
    Pruning under-approximates the initial assignment; the reinstatement
    pass in {!Fixpoint.solve_unit} restores exactness of the final
    solution. *)

open Liquid_logic
module KMap = Constr.KMap

(** Why an instance was parked.  [Dup] carries the surviving
    representative: normal forms are substitution-stable, so the dup
    belongs in the final solution iff the representative does. *)
type reason = Dup of Pred.t | Refuted | Subsumed

(** Partition of each κ's candidate list into survivors and parked
    instances, both in original candidate order, with per-phase counts.
    The payload ['a] (qualifier provenance in the engine) is carried
    through untouched. *)
type 'a plan = {
  kept : (Pred.t * 'a) list KMap.t;
  parked : (Pred.t * 'a * reason) list KMap.t;
  n_dup : int;
  n_refuted : int;
  n_subsumed : int;
}

(** Per-κ facts for the refutation/subsumption phases: binding facts and
    guards of the κ's (first) wf environment, κ refinements read as ⊤. *)
val wf_facts : Constr.wf list -> Pred.t list KMap.t

(** Run the three phases over an initial assignment.  Only κs written by
    some constraint of [subs] are pruned (writerless κs are never
    weakened, so shrinking them could only lose precision). *)
val analyze :
  wf_facts:Pred.t list KMap.t ->
  Constr.sub list ->
  (Pred.t * 'a) list KMap.t ->
  'a plan

(** Total parked instances across the three phases. *)
val total : 'a plan -> int
