(** Refinement-type specifications — modular, checkable signatures for
    top-level bindings (DSOLVE accepted an interface file the same way).

    A specification file contains declarations

    {v
      val sum    : k:int -> {v:int | v >= k && 0 <= v}
      val bsearch: key:int -> vec:int array -> {v:int | v < len vec}
      val append : xs:'a list -> ys:'a list ->
                   {v:'a list | llen v = llen xs + llen ys}
    v}

    The type grammar: arrows with optional argument binders
    ([x:T -> ...], binders are in scope to the right and inside later
    refinements), base types [int]/[bool]/[unit], type variables ['a],
    postfix [array]/[list], tuples [(T1 * T2)], and refined positions
    [{v:T | pred}] with the shared predicate language of {!Qualparse}.

    During verification (see {!Congen.generate}), a specified binding is

    - {e checked}: the inferred type must be a subtype of the
      specification (failures are reported like any other obligation), and
    - {e used modularly}: later bindings see the specification, not the
      inferred type. *)

open Liquid_common
open Liquid_logic
open Liquid_lang

exception Error of string

type t = (Ident.t * Rtype.t) list

(* -- Parsing ------------------------------------------------------------------ *)

(* Type-variable names get spec-local ids in a range disjoint from both
   generalized (small) and residual-unification (1_000_000+) ids. *)
let tyvar_base = 2_000_000

type penv = {
  st : Qualparse.stream;
  mutable tyvars : (string * int) list;
  mutable binders : (string * Sort.t) list; (* argument binders in scope *)
}

let tyvar_id env name =
  match List.assoc_opt name env.tyvars with
  | Some k -> k
  | None ->
      let k = tyvar_base + List.length env.tyvars in
      env.tyvars <- (name, k) :: env.tyvars;
      k

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(** Elaborate a predicate with [v] at [vv_sort] and the current binders
    in scope. *)
let elaborate_pred env (vv_sort : Sort.t) (p : Qualparse.rpred) : Pred.t =
  let sorts name =
    if name = "v" then vv_sort
    else
      match List.assoc_opt name env.binders with
      | Some s -> s
      | None -> fail "unbound name '%s' in specification refinement" name
  in
  try Qualparse.pred_of_rpred sorts p
  with Qualparse.Ill_sorted -> fail "ill-sorted specification refinement"

(* type grammar: arrow > (binder) postfix > atom *)
let rec parse_type env : Rtype.t =
  let lhs, binder = parse_arg env in
  match Qualparse.peek env.st with
  | Token.ARROW ->
      Qualparse.advance env.st;
      let x =
        match binder with
        | Some x -> Ident.of_string x
        (* Not "arg": that base belongs to in-run template binders, and
           spec names must stay disjoint from every generated name even
           though the pipeline resets the gensym counter per program. *)
        | None -> Gensym.fresh "spec_arg"
      in
      (match binder with
      | Some name -> env.binders <- (name, Rtype.sort_of lhs) :: env.binders
      | None -> ());
      let rhs = parse_type env in
      Rtype.Fun (x, lhs, rhs)
  | _ ->
      if binder <> None then fail "argument binder without an arrow";
      lhs

(** One argument position: an optional binder followed by a type. *)
and parse_arg env : Rtype.t * string option =
  match Qualparse.peek env.st with
  | Token.IDENT name
    when name <> "int" && name <> "bool" && name <> "unit" ->
      Qualparse.advance env.st;
      Qualparse.expect env.st Token.COLON "':' after argument binder";
      (parse_postfix env, Some name)
  | _ -> (parse_postfix env, None)

and parse_postfix env : Rtype.t =
  let t = ref (parse_atom env) in
  let continue_ = ref true in
  while !continue_ do
    match Qualparse.peek env.st with
    | Token.IDENT "array" ->
        Qualparse.advance env.st;
        t := Rtype.Array (!t, Rtype.trivial)
    | Token.IDENT "list" ->
        Qualparse.advance env.st;
        t := Rtype.List (!t, Rtype.trivial)
    | _ -> continue_ := false
  done;
  !t

and parse_atom env : Rtype.t =
  match Qualparse.peek env.st with
  | Token.IDENT "int" ->
      Qualparse.advance env.st;
      Rtype.Base (Rtype.Bint, Rtype.trivial)
  | Token.IDENT "bool" ->
      Qualparse.advance env.st;
      Rtype.Base (Rtype.Bbool, Rtype.trivial)
  | Token.IDENT "unit" ->
      Qualparse.advance env.st;
      Rtype.Base (Rtype.Bunit, Rtype.trivial)
  | Token.TYVAR a ->
      Qualparse.advance env.st;
      Rtype.Tyvar (tyvar_id env a, Rtype.trivial)
  | Token.LBRACE -> (
      (* {v : T | pred} *)
      Qualparse.advance env.st;
      (match Qualparse.peek env.st with
      | Token.IDENT "v" -> Qualparse.advance env.st
      | t -> fail "expected the value variable 'v', found '%s'" (Token.to_string t));
      Qualparse.expect env.st Token.COLON "':'";
      let base = parse_postfix env in
      Qualparse.expect env.st Token.BAR "'|'";
      Qualparse.reset_anon env.st;
      let rp = Qualparse.parse_pred env.st in
      Qualparse.expect env.st Token.RBRACE "'}'";
      let vv_sort = Rtype.sort_of base in
      let p = elaborate_pred env vv_sort rp in
      (* rename the surface value variable "v" to the internal one *)
      let p =
        let v =
          if Sort.equal vv_sort Sort.Bool then Pred.Pr (Pred.bvar Ident.vv)
          else Pred.Tm (Term.var Ident.vv vv_sort)
        in
        Pred.subst1 (Ident.of_string "v") v p
      in
      match base with
      | Rtype.Base (b, r) -> Rtype.Base (b, Rtype.strengthen p r)
      | Rtype.Array (e, r) -> Rtype.Array (e, Rtype.strengthen p r)
      | Rtype.List (e, r) -> Rtype.List (e, Rtype.strengthen p r)
      | Rtype.Data (d, r) -> Rtype.Data (d, Rtype.strengthen p r)
      | Rtype.Tyvar (k, r) -> Rtype.Tyvar (k, Rtype.strengthen p r)
      | Rtype.Fun _ | Rtype.Tuple _ ->
          fail "refinements on function or tuple types are not supported")
  | Token.LPAREN -> (
      Qualparse.advance env.st;
      let t1 = parse_type env in
      let parts = ref [ t1 ] in
      while Qualparse.peek env.st = Token.STAR do
        Qualparse.advance env.st;
        parts := parse_type env :: !parts
      done;
      Qualparse.expect env.st Token.RPAREN "')'";
      match List.rev !parts with
      | [ t ] -> t
      | ts -> Rtype.Tuple ts)
  | t -> fail "unexpected token '%s' in specification type" (Token.to_string t)

(** Parse a specification file: a sequence of [val name : type]. *)
let parse_string (src : string) : t =
  let st = Qualparse.of_string src in
  let specs = ref [] in
  let rec loop () =
    match Qualparse.peek st with
    | Token.EOF -> ()
    | Token.VAL ->
        Qualparse.advance st;
        let name =
          match Qualparse.peek st with
          | Token.IDENT s ->
              Qualparse.advance st;
              s
          | t -> fail "expected a name after 'val', found '%s'" (Token.to_string t)
        in
        Qualparse.expect st Token.COLON "':'";
        let env = { st; tyvars = []; binders = [] } in
        let ty = parse_type env in
        specs := (Ident.of_string name, ty) :: !specs;
        loop ()
    | t -> fail "expected 'val', found '%s'" (Token.to_string t)
  in
  (try loop () with Qualparse.Parse_error m -> raise (Error m));
  List.rev !specs

let lookup (specs : t) (x : Ident.t) : Rtype.t option = List.assoc_opt x specs

let pp ppf (specs : t) =
  List.iter
    (fun (x, ty) -> Fmt.pf ppf "val %a : %a@." Ident.pp x Rtype.pp ty)
    specs

(* -- Alignment with inferred ML shapes ------------------------------------------ *)

exception Misaligned of string

(** Rename the specification's type variables to the ids the inferred ML
    type uses at the same positions, so that constraint splitting sees
    matching [Tyvar] ids.  Fails ({!Misaligned}) if the specification is
    less general than the inferred type (a concrete type against an ML
    type variable, or one spec variable against two distinct ML
    variables). *)
let align_tyvars (spec_rt : Rtype.t) (ml : Liquid_typing.Mltype.t) : Rtype.t =
  let open Liquid_typing in
  let mapping : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let target_id ty =
    match Mltype.repr ty with
    | Mltype.Tvar { contents = Mltype.Rigid k } -> Some k
    | Mltype.Tvar { contents = Mltype.Unbound (id, _) } ->
        Some (Rtype.tyvar_id_of_unbound id)
    | _ -> None
  in
  let rec go (rt : Rtype.t) (ty : Mltype.t) : Rtype.t =
    match (rt, Mltype.repr ty) with
    | Rtype.Tyvar (k, r), ty' -> (
        match target_id ty' with
        | Some k' -> (
            match Hashtbl.find_opt mapping k with
            | Some prev when prev <> k' ->
                raise
                  (Misaligned
                     "one specification type variable covers two distinct \
                      inferred type variables")
            | _ ->
                Hashtbl.replace mapping k k';
                Rtype.Tyvar (k', r))
        | None ->
            raise
              (Misaligned
                 "specification uses a type variable where a concrete type \
                  was inferred"))
    | Rtype.Base _, (Mltype.Tint | Mltype.Tbool | Mltype.Tunit) -> rt
    | Rtype.Fun (x, a, b), Mltype.Tarrow (ta, tb) ->
        Rtype.Fun (x, go a ta, go b tb)
    | Rtype.Tuple ts, Mltype.Ttuple tys when List.length ts = List.length tys
      ->
        Rtype.Tuple (List.map2 go ts tys)
    | Rtype.List (t, r), Mltype.Tlist ty -> Rtype.List (go t ty, r)
    | Rtype.Array (t, r), Mltype.Tarray ty -> Rtype.Array (go t ty, r)
    | _, ty' ->
        raise
          (Misaligned
             (Fmt.str
                "specification shape does not match the inferred type %a"
                Mltype.pp ty'))
  in
  go spec_rt ml
