(** Liquid constraints: environments, well-formedness and subtyping
    constraints, splitting into simple constraints, and environment
    embedding. *)

open Liquid_common
open Liquid_logic

(** {1 Environments} *)

type env = {
  binds : (Ident.t * Rtype.t) list; (* newest first *)
  guards : Pred.t list;
}

val empty_env : env
val bind_var : Ident.t -> Rtype.t -> env -> env
val guard : Pred.t -> env -> env
val lookup_env : env -> Ident.t -> Rtype.t option

(** Variables usable in qualifier instances, with their sorts (functions
    and unit excluded). *)
val scope_of_env : env -> (Ident.t * Sort.t) list

(** {1 Constraints} *)

type origin = { loc : Loc.t; reason : string }

(** Right-hand side of a simple constraint: a κ to weaken, or a concrete
    obligation checked after the fixpoint. *)
type rhs = Rkvar of Rtype.kvar * Pred.subst | Rconc of Pred.t

type sub = {
  sub_id : int;
  sub_env : env;
  lhs : Rtype.refinement;
  rhs : rhs;
  vv_sort : Sort.t;
  origin : origin;
}

type wf = { wf_env : env; wf_kvar : Rtype.kvar; wf_sort : Sort.t }

exception Shape_error of string

(** Restart [sub_id] numbering.  Constraints never outlive one
    verification run, and per-run-stable ids keep failure ordering,
    explanations, and partition-cache keys ({!unit_signature})
    independent of what the process verified before — a warm daemon or
    a test harness numbers exactly like a one-shot run.  Call alongside
    {!Rtype.reset_kvars} before generating a constraint system. *)
val reset_subs : unit -> unit

(** {1 Splitting} *)

val base_sort : Rtype.base -> Sort.t

(** Logical value standing for a variable of a given type. *)
val var_value : Rtype.t -> Ident.t -> Pred.value

(** Split [env ⊢ t1 <: t2] into simple constraints (functions
    contravariant, arrays invariant, lists covariant).
    @raise Shape_error on incompatible shapes. *)
val split : env -> origin -> Rtype.t -> Rtype.t -> sub list -> sub list

(** Well-formedness constraints for every κ of a template, binders
    entering scope per the paper's rules. *)
val split_wf : env -> Rtype.t -> wf list -> wf list

(** {1 Dependency structure and partitioning} *)

(** κs read by a constraint (environment and left-hand side): weakening
    any of them can weaken the constraint's right-hand κ. *)
val reads : sub -> int list

(** The κ a constraint weakens ([None]: a concrete obligation). *)
val writes : sub -> int option

(** A {e solve unit}: one strongly-connected component of the κ→κ
    dependency graph, owning the constraints that weaken its κs plus the
    concrete obligations attached to it.  Units are numbered in
    topological order — every [part_deps] entry is a smaller id — so a
    scheduler may run any unit whose dependencies have completed, and
    sequential execution in id order is always legal. *)
type partition = {
  part_id : int; (* topological index: every dependency has a smaller id *)
  part_kvars : int list; (* κs owned (weakened) by this unit, sorted *)
  part_subs : sub list; (* constraints solved here, in original order *)
  part_deps : int list; (* part_ids whose final solutions this unit reads *)
}

type plan = {
  parts : partition array; (* topologically ordered *)
  plan_kvars : int; (* κs in the dependency graph *)
  critical_path : int; (* longest dependency chain, in partitions *)
}

(** Condense the κ→κ dependency graph of a constraint system into the
    solve-unit plan: SCC condensation in topological order, κ-weakening
    constraints attached to the unit owning their κ, concrete
    obligations attached to the latest unit among the κs they read (with
    dependency edges on the others). *)
val partition_plan : wf list -> sub list -> plan

(** {1 Embedding} *)

module KMap : Map.S with type key = int

type solution = Pred.t list KMap.t

val sol_find : solution -> int -> Pred.t list

(** Predicates denoted by a refinement with [ν := value], under a κ
    lookup. *)
val preds_of_refinement :
  (Rtype.kvar -> Pred.t list) -> Pred.value -> Rtype.refinement -> Pred.t list

(** Antecedent facts of an environment: (binding facts, guards).  Guards
    are returned separately so the solver can exempt them from relevance
    pruning. *)
val embed_env :
  (Rtype.kvar -> Pred.t list) -> env -> Pred.t list * Pred.t list

(** {1 Traced embedding} (explanation engine) *)

(** Provenance of one antecedent fact: the environment binder that
    contributed it ([None] for guards) and the κ whose solution instance
    it is ([None] for static refinement parts and measure axioms). *)
type fact_origin = { fo_binder : Ident.t option; fo_kvar : Rtype.kvar option }

(** {!preds_of_refinement} with the κ each fact instantiates ([None]:
    the refinement's static part). *)
val preds_of_refinement_traced :
  (Rtype.kvar -> Pred.t list) ->
  Pred.value ->
  Rtype.refinement ->
  (Pred.t * Rtype.kvar option) list

(** {!embed_env} with per-fact provenance: the same facts, in the same
    order, under the same [tt] filter, so fact [i] here is hypothesis
    [i] of {!embed_env} — the correspondence that lets
    {!Liquid_smt.Solver.check_valid_idx} indices be mapped back to
    binders and κs. *)
val embed_env_trace :
  (Rtype.kvar -> Pred.t list) -> env -> (Pred.t * fact_origin) list * Pred.t list

(** {1 Compiled embedding} (incremental fixpoint)

    A compiled antecedent slot is either a κ-independent fact or a κ
    occurrence whose instantiation ([ν := value] ∘ θ) is memoized per
    solution pred.  Expanding a slot list under the current solution
    yields exactly what {!embed_env} / {!preds_of_refinement} produce
    (the caller drops [tt] from site expansions of environment facts),
    but re-expansion after weakening costs table lookups only. *)

type slot =
  | Sstatic of Pred.t
  | Ssite of Rtype.kvar * (Pred.t -> Pred.t) (* memoized instantiation *)

(** Compiled binding facts of an environment (static [tt] already
    dropped); mirrors the fact half of {!embed_env}. *)
val compile_env : env -> slot list

(** Compiled slots of a refinement with [ν := value]; mirrors
    {!preds_of_refinement} (no [tt] filtering). *)
val compile_refinement : Pred.value -> Rtype.refinement -> slot list

(** {1 Content signatures} (partition-level result cache)

    [unit_signature wfs p] digests a canonical rendering of everything
    {e local} to solve unit [p]: its constraints (ids, full
    environments with κ occurrences, left- and right-hand sides, sorts,
    origins — origins included because cached failures replay their
    locations verbatim) and the well-formedness constraints of the κs
    it owns (whose environments determine the unit's qualifier
    instances).  Together with the instantiated qualifier set and the
    final solutions of the unit's [part_deps] — supplied by the caller,
    which knows them — the signature content-addresses the unit's
    {!Liquid_infer.Fixpoint.partial}: equal inputs, equal result.

    Stability: κ numbers, constraint ids, and source locations restart
    deterministically per run, so an edit that preserves the shape of
    the program upstream of a unit (and the unit's own text) reproduces
    its signature exactly; an edit that renumbers κs or shifts lines
    through it changes the signature and honestly forces a re-solve. *)
val unit_signature : wf list -> partition -> string

(** {1 Printing} *)

val pp_origin : Format.formatter -> origin -> unit
val pp_rhs : Format.formatter -> rhs -> unit
val pp_sub : Format.formatter -> sub -> unit
val pp_wf : Format.formatter -> wf -> unit
