(** Refinement types (liquid type templates).

    A refinement is a conjunction of a concrete predicate over the value
    variable [ν] and a set of liquid type variables κ under pending
    substitutions.  Refinable positions: integer/boolean bases, arrays
    (refinements over [len ν]), lists (refinements over [llen ν]), and
    type variables (concrete selfifications only, transported by
    polymorphic instantiation). *)

open Liquid_common
open Liquid_logic
open Liquid_typing

type kvar = int

type refinement = {
  preds : Pred.t; (* concrete part, over ν *)
  kvars : (kvar * Pred.subst) list; (* κs under pending substitutions *)
}

type base = Bint | Bbool | Bunit

type t =
  | Base of base * refinement
  | Fun of Ident.t * t * t (* x:T1 -> T2; T2 may mention x *)
  | Tuple of t list
  | List of t * refinement
  | Array of t * refinement
  | Data of string * refinement (* user ADT; refinement speaks about measures of ν *)
  | Tyvar of int * refinement

(** {1 Refinements} *)

val known : Pred.t -> refinement
val trivial : refinement
val is_trivial : refinement -> bool
val fresh_kvar : unit -> kvar
val fresh_kvar_ref : unit -> refinement
val reset_kvars : unit -> unit

(** Conjoin a concrete predicate / another refinement. *)
val strengthen : Pred.t -> refinement -> refinement

val meet : refinement -> refinement -> refinement

(** Logical sort of the classified values. *)
val sort_of : t -> Sort.t

(** [compose_subst s1 s2] applies [s1] first, then [s2]. *)
val compose_subst : Pred.subst -> Pred.subst -> Pred.subst

val subst_refinement : Pred.subst -> refinement -> refinement
val subst : Pred.subst -> t -> t
val subst1 : Ident.t -> Pred.value -> t -> t

(** {1 Shapes, templates, instantiation} *)

val tyvar_id_of_unbound : int -> int

(** Shape of an ML type with trivial refinements. *)
val shape : Mltype.t -> t

(** Template with a fresh κ at every refinable position. *)
val template : Mltype.t -> t

(** Translate a type-variable refinement to the instance sort (only
    equality selfifications survive re-sorting; the rest degrade to
    [true], soundly). *)
val resort_pred : Sort.t -> Pred.t -> Pred.t

val resort_refinement : Sort.t -> refinement -> refinement
val strengthen_top : refinement -> t -> t

(** Instantiate a polymorphic binder's type at a use site: [Tyvar]
    positions get one fresh template per type variable, strengthened by
    any refinement the scheme carried there.
    @raise Invalid_argument on shape mismatch. *)
val instantiate : t -> Mltype.t -> t

(** {1 Selfification} *)

(** Uninterpreted projection symbol for tuple component [i] at a sort. *)
val proj_symbol : int -> Sort.t -> Symbol.t

(** The equality [ν = x] at a sort. *)
val self_pred : Sort.t -> Ident.t -> Pred.t

val strengthen_with_proj : int -> Sort.t -> Term.t -> t -> t

(** Strengthen the top-level refinement with [ν = x] (the paper's rule
    for variable occurrences). *)
val selfify : Ident.t -> t -> t

(** {1 Queries} *)

val fold_refinements : ('a -> refinement -> 'a) -> 'a -> t -> 'a
val kvars : t -> kvar list

(** Program variables mentioned by refinements (including pending
    substitution ranges). *)
val free_prog_vars : t -> Ident.t list

(** [rehash ()] is a memoized re-interner for types unmarshalled from
    another process (see {!Liquid_logic.Pred.rehasher}): it maps every
    foreign predicate and term in the type to the canonical local node.
    One rehasher per marshalled payload. *)
val rehash : unit -> t -> t

(** {1 Printing} *)

val pp_subst : Format.formatter -> Pred.subst -> unit
val pp_refinement : Format.formatter -> refinement -> unit
val pp : Format.formatter -> t -> unit
val pp_atom : Format.formatter -> t -> unit
val to_string : t -> string
