(** Refinement types (liquid type templates).

    A refinement type decorates the ML-type shape computed by
    {!Liquid_typing.Infer} with refinements.  A refinement is a
    {e conjunction} of a concrete predicate over the value variable [ν]
    and a set of liquid type variables [κ] (each under a pending
    substitution); the fixpoint solver assigns each [κ] a conjunction of
    qualifier instances.  Carrying both parts at once lets selfification
    and polymorphic instantiation {e strengthen} template positions
    without discarding their κ.

    Refinable positions: integer and boolean bases, arrays (whose
    refinement speaks about [len ν]), and {e type variables} — the latter
    carry only concrete equalities (selfifications), which polymorphic
    instantiation transports onto the instance type; this is how
    [id 3 : {ν = 3}] works in the paper.  Tuples refine componentwise and
    components are addressed in the logic through uninterpreted projection
    symbols, so that tuple-typed environment bindings still contribute
    facts.  Functions carry a dependent argument name; lists refine their
    element type only (the paper has no length measures — those came with
    the PLDI'09 follow-up). *)

open Liquid_common
open Liquid_logic

type kvar = int

type refinement = {
  preds : Pred.t; (* concrete part, over ν *)
  kvars : (kvar * Pred.subst) list; (* κs under pending substitutions *)
}

type base = Bint | Bbool | Bunit

type t =
  | Base of base * refinement
  | Fun of Ident.t * t * t (* x:T1 -> T2, T2 may mention x *)
  | Tuple of t list
  | List of t * refinement (* element type, refinement on the list value *)
  | Array of t * refinement (* element type, refinement on the array value *)
  | Data of string * refinement (* user ADT; refinement speaks about measures of ν *)
  | Tyvar of int * refinement (* rigid ML type variable; concrete part only *)

(* -- Refinement helpers -------------------------------------------------- *)

let known p = { preds = p; kvars = [] }

let trivial = known Pred.tt

let is_trivial r = r.kvars = [] && Pred.equal r.preds Pred.tt

let kvar_counter = ref 0

let fresh_kvar () =
  incr kvar_counter;
  !kvar_counter

let fresh_kvar_ref () = { preds = Pred.tt; kvars = [ (fresh_kvar (), Ident.Map.empty) ] }

let reset_kvars () = kvar_counter := 0

(** Conjoin a concrete predicate onto a refinement. *)
let strengthen p r = { r with preds = Pred.and_ r.preds p }

(** Conjoin two refinements. *)
let meet r1 r2 =
  { preds = Pred.and_ r1.preds r2.preds; kvars = r1.kvars @ r2.kvars }

(** Sort of the values a type classifies, as seen by the logic. *)
let sort_of : t -> Sort.t = function
  | Base (Bint, _) -> Sort.Int
  | Base (Bbool, _) -> Sort.Bool
  | Base (Bunit, _) -> Sort.Obj
  | Fun _ | Tuple _ | List _ | Array _ | Data _ | Tyvar _ -> Sort.Obj

(** Compose substitutions: [compose s1 s2] applies [s1] first, then [s2]. *)
let compose_subst (s1 : Pred.subst) (s2 : Pred.subst) : Pred.subst =
  let mapped =
    Ident.Map.map
      (function
        | Pred.Tm t -> Pred.Tm (Term.subst (Pred.term_part s2) t)
        | Pred.Pr p -> Pred.Pr (Pred.subst s2 p))
      s1
  in
  Ident.Map.union (fun _ v1 _ -> Some v1) mapped s2

let subst_refinement (s : Pred.subst) (r : refinement) : refinement =
  {
    preds = Pred.subst s r.preds;
    kvars = List.map (fun (k, theta) -> (k, compose_subst theta s)) r.kvars;
  }

(** Apply a program-variable substitution throughout a type. *)
let rec subst (s : Pred.subst) (t : t) : t =
  match t with
  | Base (b, r) -> Base (b, subst_refinement s r)
  | Fun (x, t1, t2) ->
      (* Binders are globally unique after ANF, so no capture. *)
      let s' = Ident.Map.remove x s in
      Fun (x, subst s t1, subst s' t2)
  | Tuple ts -> Tuple (List.map (subst s) ts)
  | List (t, r) -> List (subst s t, subst_refinement s r)
  | Array (t, r) -> Array (subst s t, subst_refinement s r)
  | Data (d, r) -> Data (d, subst_refinement s r)
  | Tyvar (k, r) -> Tyvar (k, subst_refinement s r)

let subst1 x v t = subst (Ident.Map.singleton x v) t

(* -- Shapes and templates -------------------------------------------------- *)

open Liquid_typing

(** Unification variables that survive resolution become rigid type
    variables with ids disjoint from generalized ones. *)
let tyvar_id_of_unbound id = 1_000_000 + id

(** Shape with trivially-true refinements. *)
let rec shape (ty : Mltype.t) : t =
  match Mltype.repr ty with
  | Mltype.Tint -> Base (Bint, trivial)
  | Mltype.Tbool -> Base (Bbool, trivial)
  | Mltype.Tunit -> Base (Bunit, trivial)
  | Mltype.Tvar { contents = Mltype.Rigid k } -> Tyvar (k, trivial)
  | Mltype.Tvar { contents = Mltype.Unbound (id, _) } ->
      Tyvar (tyvar_id_of_unbound id, trivial)
  | Mltype.Tvar { contents = Mltype.Link _ } -> assert false
  | Mltype.Tarrow (a, b) -> Fun (Gensym.fresh_inst "arg", shape a, shape b)
  | Mltype.Ttuple ts -> Tuple (List.map shape ts)
  | Mltype.Tlist t -> List (shape t, trivial)
  | Mltype.Tarray t -> Array (shape t, trivial)
  | Mltype.Tcon d -> Data (d, trivial)

(** Template with a fresh [κ] at every refinable position. *)
let rec template (ty : Mltype.t) : t =
  match Mltype.repr ty with
  | Mltype.Tint -> Base (Bint, fresh_kvar_ref ())
  | Mltype.Tbool -> Base (Bbool, fresh_kvar_ref ())
  | Mltype.Tunit -> Base (Bunit, trivial)
  | Mltype.Tvar { contents = Mltype.Rigid k } -> Tyvar (k, trivial)
  | Mltype.Tvar { contents = Mltype.Unbound (id, _) } ->
      Tyvar (tyvar_id_of_unbound id, trivial)
  | Mltype.Tvar { contents = Mltype.Link _ } -> assert false
  | Mltype.Tarrow (a, b) -> Fun (Gensym.fresh_inst "arg", template a, template b)
  | Mltype.Ttuple ts -> Tuple (List.map template ts)
  | Mltype.Tlist t -> List (template t, fresh_kvar_ref ())
  | Mltype.Tarray t -> Array (template t, fresh_kvar_ref ())
  | Mltype.Tcon d -> Data (d, fresh_kvar_ref ())

(* -- Re-sorting tyvar refinements -------------------------------------------- *)

(** Translate a refinement written at the generic [Obj] sort of a type
    variable to [target] sort.  Only equality atoms between [Obj]-sorted
    variables survive (selfifications — the only refinements placed on
    type variables); anything else degrades to [true], which is sound. *)
let resort_pred (target : Sort.t) (p : Pred.t) : Pred.t =
  let resort_var (x, s) =
    if Sort.equal s Sort.Obj then Some x else None
  in
  let rec go p =
    match Pred.view p with
    | Pred.True | Pred.False -> p
    | Pred.Atom (ta, rel, tb) -> (
        match (Term.view ta, Term.view tb) with
        | Term.Var (a, sa), Term.Var (b, sb)
          when (rel = Pred.Eq || rel = Pred.Ne)
               && resort_var (a, sa) <> None
               && resort_var (b, sb) <> None -> (
            match target with
            | Sort.Obj -> p
            | Sort.Int ->
                Pred.make
                  (Pred.Atom (Term.var a Sort.Int, rel, Term.var b Sort.Int))
            | Sort.Bool ->
                let iff = Pred.iff (Pred.bvar a) (Pred.bvar b) in
                if rel = Pred.Eq then iff else Pred.not_ iff)
        | _ -> if Sort.equal target Sort.Obj then p else Pred.tt)
    | Pred.Bvar _ -> if Sort.equal target Sort.Obj then p else Pred.tt
    | Pred.Not q -> Pred.not_ (go q)
    | Pred.And ps -> Pred.conj (List.map go ps)
    | Pred.Or _ | Pred.Imp _ | Pred.Iff _ ->
        (* non-conjunctive structure cannot be safely degraded atomwise *)
        if Sort.equal target Sort.Obj then p else Pred.tt
  in
  go p

let resort_refinement (target : Sort.t) (r : refinement) : refinement =
  if Sort.equal target Sort.Obj then r
  else { r with preds = resort_pred target r.preds }

(** Strengthen the top-level refinement of [t] with [r] (used when a
    refined type variable is instantiated).  Positions without a
    refinement slot drop [r]'s concrete part (sound: refinements only
    ever shrink the denotation). *)
let strengthen_top (r : refinement) (t : t) : t =
  if is_trivial r then t
  else
    match t with
    | Base (b, r0) ->
        let s = match b with Bint -> Sort.Int | Bbool -> Sort.Bool | Bunit -> Sort.Obj in
        Base (b, meet r0 (resort_refinement s r))
    | Array (e, r0) -> Array (e, meet r0 r)
    | List (e, r0) -> List (e, meet r0 r)
    | Data (d, r0) -> Data (d, meet r0 r)
    | Tyvar (k, r0) -> Tyvar (k, meet r0 r)
    | Fun _ | Tuple _ -> t

(** Instantiate the rtype of a polymorphic binder at a use site.

    [scheme_body] is the rtype as stored for the binder (with [Tyvar]
    nodes for generalized variables); [site_ty] is the resolved
    monomorphic ML type recorded at the variable occurrence.  Positions
    where the scheme has [Tyvar k] receive a fresh template of the
    corresponding part of [site_ty] — one shared template per type
    variable, as in the paper — strengthened by any concrete refinement
    the scheme carried at that occurrence. *)
let instantiate (scheme_body : t) (site_ty : Mltype.t) : t =
  let inst_cache : (int, t) Hashtbl.t = Hashtbl.create 4 in
  let rec go (rt : t) (ty : Mltype.t) : t =
    match (rt, Mltype.repr ty) with
    | Tyvar (k, r), ty ->
        let base =
          match Hashtbl.find_opt inst_cache k with
          | Some t -> t
          | None ->
              let t = template ty in
              Hashtbl.add inst_cache k t;
              t
        in
        strengthen_top r base
    | Base _, _ | Data _, _ -> rt
    | Fun (x, a, b), Mltype.Tarrow (ta, tb) -> Fun (x, go a ta, go b tb)
    | Tuple ts, Mltype.Ttuple tys -> Tuple (List.map2 go ts tys)
    | List (t, r), Mltype.Tlist ty -> List (go t ty, r)
    | Array (t, r), Mltype.Tarray ty -> Array (go t ty, r)
    | _ ->
        invalid_arg
          (Fmt.str "Rtype.instantiate: shape mismatch (%a)" Mltype.pp site_ty)
  in
  go scheme_body site_ty

(* -- Selfification ---------------------------------------------------------- *)

(** Uninterpreted projection symbols for tuple components. *)
let proj_symbol i (s : Sort.t) : Symbol.t =
  let name = Fmt.str "proj%d_%a" i Sort.pp s in
  Symbol.declare name { Sort.args = [ Sort.Obj ]; result = s }

(** The "selfified" equality [ν = x] at a given sort. *)
let self_pred (sort : Sort.t) (x : Ident.t) : Pred.t =
  match sort with
  | Sort.Bool -> Pred.iff (Pred.bvar Ident.vv) (Pred.bvar x)
  | s -> Pred.eq (Term.var Ident.vv s) (Term.var x s)

(** Strengthen tuple component [i] (of sort [s]) of value [base] with
    [ν = projᵢ(base)].  Boolean components are skipped: we have no
    boolean-valued projection atoms in the logic. *)
let strengthen_with_proj i (s : Sort.t) (base : Term.t) (ti : t) : t =
  if Sort.equal s Sort.Bool then ti
  else
    let proj = Term.app (proj_symbol i s) [ base ] in
    let p = Pred.eq (Term.var Ident.vv s) proj in
    match ti with
    | Base (b, r) -> Base (b, strengthen p r)
    | Array (e, r) -> Array (e, strengthen p r)
    | List (e, r) -> List (e, strengthen p r)
    | Data (d, r) -> Data (d, strengthen p r)
    | Tyvar (k, r) -> Tyvar (k, strengthen p r)
    | _ -> ti

(** [selfify x t] strengthens the top-level refinement of [t] with
    [ν = x], the paper's rule for variable occurrences. *)
let selfify (x : Ident.t) (t : t) : t =
  match t with
  | Base (Bunit, _) -> t
  | Base (b, r) ->
      let sort = match b with Bint -> Sort.Int | Bbool -> Sort.Bool | Bunit -> Sort.Obj in
      Base (b, strengthen (self_pred sort x) r)
  | Array (elem, r) -> Array (elem, strengthen (self_pred Sort.Obj x) r)
  | List (elem, r) -> List (elem, strengthen (self_pred Sort.Obj x) r)
  | Data (d, r) -> Data (d, strengthen (self_pred Sort.Obj x) r)
  | Tyvar (k, r) -> Tyvar (k, strengthen (self_pred Sort.Obj x) r)
  | Tuple ts ->
      Tuple
        (List.mapi
           (fun i ti ->
             strengthen_with_proj i (sort_of ti) (Term.var x Sort.Obj) ti)
           ts)
  | Fun _ -> t

(* -- Free kvars / vars --------------------------------------------------------- *)

let rec fold_refinements f acc = function
  | Base (_, r) -> f acc r
  | Fun (_, t1, t2) -> fold_refinements f (fold_refinements f acc t1) t2
  | Tuple ts -> List.fold_left (fold_refinements f) acc ts
  | List (t, r) -> f (fold_refinements f acc t) r
  | Array (t, r) -> f (fold_refinements f acc t) r
  | Data (_, r) -> f acc r
  | Tyvar (_, r) -> f acc r

let kvars t =
  fold_refinements (fun acc r -> List.map fst r.kvars @ acc) [] t

(** Program variables mentioned by the refinements of [t] (including the
    ranges of pending substitutions). *)
let free_prog_vars t =
  let of_value acc = function
    | Pred.Tm tm -> List.fold_left (fun acc (x, _) -> x :: acc) acc (Term.vars tm)
    | Pred.Pr p -> List.fold_left (fun acc (x, _) -> x :: acc) acc (Pred.free_vars p)
  in
  fold_refinements
    (fun acc r ->
      let acc =
        List.fold_left
          (fun acc (x, _) -> if Ident.is_vv x then acc else x :: acc)
          acc (Pred.free_vars r.preds)
      in
      List.fold_left
        (fun acc (_, theta) ->
          Ident.Map.fold (fun _ v acc -> of_value acc v) theta acc)
        acc r.kvars)
    [] t

(** Re-intern a type that crossed a process boundary: every predicate
    and term in it (refinements, and the ranges of pending
    substitutions) is physically foreign after unmarshalling and must be
    mapped to this process's canonical nodes before physical-equality
    tricks (e.g. eliding [true] refinements in printing) work again.
    One rehasher per marshalled payload, as with {!Pred.rehasher}. *)
let rehash () : t -> t =
  let pgo = Pred.rehasher () in
  let tgo = Term.rehasher () in
  let value = function
    | Pred.Tm tm -> Pred.Tm (tgo tm)
    | Pred.Pr p -> Pred.Pr (pgo p)
  in
  let refinement r =
    {
      preds = pgo r.preds;
      kvars = List.map (fun (k, theta) -> (k, Ident.Map.map value theta)) r.kvars;
    }
  in
  let rec go = function
    | Base (b, r) -> Base (b, refinement r)
    | Fun (x, t1, t2) -> Fun (x, go t1, go t2)
    | Tuple ts -> Tuple (List.map go ts)
    | List (t, r) -> List (go t, refinement r)
    | Array (t, r) -> Array (go t, refinement r)
    | Data (d, r) -> Data (d, refinement r)
    | Tyvar (i, r) -> Tyvar (i, refinement r)
  in
  go

(* -- Printing ------------------------------------------------------------------- *)

let pp_subst ppf theta =
  Fmt.pf ppf "[%a]"
    Fmt.(
      list ~sep:comma (fun ppf (x, v) ->
          match v with
          | Pred.Tm t -> Fmt.pf ppf "%a:=%a" Ident.pp x Term.pp t
          | Pred.Pr p -> Fmt.pf ppf "%a:=%a" Ident.pp x Pred.pp p))
    (Ident.Map.bindings theta)

let pp_refinement ppf (r : refinement) =
  let parts =
    (if Pred.equal r.preds Pred.tt then [] else [ Fmt.str "%a" Pred.pp r.preds ])
    @ List.map
        (fun (k, theta) ->
          if Ident.Map.is_empty theta then Fmt.str "k%d" k
          else Fmt.str "k%d%a" k pp_subst theta)
        r.kvars
  in
  match parts with
  | [] -> Fmt.string ppf "true"
  | parts -> Fmt.string ppf (String.concat " && " parts)

let base_name = function Bint -> "int" | Bbool -> "bool" | Bunit -> "unit"

let rec pp ppf = function
  | Base (b, r) when is_trivial r -> Fmt.string ppf (base_name b)
  | Base (b, r) -> Fmt.pf ppf "{v:%s | %a}" (base_name b) pp_refinement r
  | Fun (x, t1, t2) -> Fmt.pf ppf "%a:%a -> %a" Ident.pp x pp_atom t1 pp t2
  | Tuple ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " * ") pp_atom) ts
  | List (t, r) when is_trivial r -> Fmt.pf ppf "%a list" pp_atom t
  | List (t, r) -> Fmt.pf ppf "{v:%a list | %a}" pp_atom t pp_refinement r
  | Array (t, r) when is_trivial r -> Fmt.pf ppf "%a array" pp_atom t
  | Array (t, r) -> Fmt.pf ppf "{v:%a array | %a}" pp_atom t pp_refinement r
  | Data (d, r) when is_trivial r -> Fmt.string ppf d
  | Data (d, r) -> Fmt.pf ppf "{v:%s | %a}" d pp_refinement r
  | Tyvar (k, r) when is_trivial r -> Fmt.string ppf (Mltype.tyvar_name k)
  | Tyvar (k, r) ->
      Fmt.pf ppf "{v:%s | %a}" (Mltype.tyvar_name k) pp_refinement r

and pp_atom ppf t =
  match t with
  | Fun _ -> Fmt.pf ppf "(%a)" pp t
  | _ -> pp ppf t

let to_string t = Fmt.str "%a" pp t
