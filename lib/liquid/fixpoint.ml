(** Liquid constraint solving by predicate abstraction.

    This is the paper's [Solve]/[Weaken] fixpoint:

    1. every κ is initialized to the set of {e all} well-sorted qualifier
       instances over the variables in scope at its well-formedness
       constraint (the strongest liquid refinement);
    2. constraints with a κ right-hand side are repeatedly {e weakened}:
       any instance not implied by the constraint's antecedent (under the
       current assignment) is dropped, and constraints reading the changed
       κ are re-queued;
    3. on stabilization, constraints with {e concrete} right-hand sides
       (assertions, primitive preconditions, user annotations) are
       checked; failures are reported with their source origin.

    Implications are discharged by {!Liquid_smt.Solver}; an "unknown"
    verdict counts as "not valid" (sound: κs only get weaker, and concrete
    checks only fail more). *)

open Liquid_common
open Liquid_logic
open Liquid_smt

module KMap = Constr.KMap
module IMap = Map.Make (Int)
module SSet = Set.Make (String)

type failure = {
  f_origin : Constr.origin;
  f_goal : Pred.t; (* the unprovable obligation, under the final solution *)
  f_cex : (string * int) list; (* falsifying values, when available *)
}

type stats = {
  mutable iterations : int; (* worklist pops *)
  mutable implication_checks : int;
  mutable initial_candidates : int;
}

type result = {
  solution : Pred.t list KMap.t;
  failures : failure list;
  solver_stats : stats;
  dead_quals : string list;
      (* qualifier patterns with at least one initial instance, none of
         which survived weakening in any κ *)
}

(* -- Initialization ---------------------------------------------------------- *)

(** Initial assignment: qualifier instances per κ, intersected over all of
    the κ's well-formedness environments.  Each instance carries the names
    of the qualifier patterns that produced it, so the solver can report
    patterns whose every instance gets pruned. *)
let init_assignment ?(consts = []) (quals : Qualifier.t list)
    (wfs : Constr.wf list) : (Pred.t * SSet.t) list KMap.t =
  List.fold_left
    (fun acc (wf : Constr.wf) ->
      let scope = Constr.scope_of_env wf.Constr.wf_env in
      let insts =
        List.map
          (fun (p, names) -> (p, SSet.of_list names))
          (Qualifier.instances_tagged ~consts quals
             ~vv_sort:wf.Constr.wf_sort ~scope)
      in
      match KMap.find_opt wf.Constr.wf_kvar acc with
      | None -> KMap.add wf.Constr.wf_kvar insts acc
      | Some prev ->
          let inter =
            List.filter_map
              (fun (p, names) ->
                match List.find_opt (fun (q, _) -> Pred.equal p q) insts with
                | Some (_, names') -> Some (p, SSet.union names names')
                | None -> None)
              prev
          in
          KMap.add wf.Constr.wf_kvar inter acc)
    KMap.empty wfs

(* -- Dependency index ----------------------------------------------------------- *)

(** κs read by a constraint: those in its environment and left-hand side. *)
let reads (c : Constr.sub) : int list =
  let env_ks =
    List.concat_map (fun (_, rt) -> Rtype.kvars rt) c.Constr.sub_env.Constr.binds
  in
  Liquid_common.Listx.dedup_ordered ~compare:Int.compare
    (List.map fst c.Constr.lhs.Rtype.kvars @ env_ks)

let writes (c : Constr.sub) : int option =
  match c.Constr.rhs with
  | Constr.Rkvar (k, _) -> Some k
  | Constr.Rconc _ -> None

(* -- Checking --------------------------------------------------------------------- *)

let vv_value (sort : Sort.t) : Pred.value =
  match sort with
  | Sort.Bool -> Pred.Pr (Pred.bvar Ident.vv)
  | s -> Pred.Tm (Term.var Ident.vv s)

(** Antecedent of a constraint under the current assignment: prunable
    binding facts plus guards (kept verbatim by the solver so that
    contradictory path conditions are never pruned away). *)
let hypotheses lookup (c : Constr.sub) : Pred.t list * Pred.t list =
  let facts, guards = Constr.embed_env lookup c.Constr.sub_env in
  let lhs_preds =
    Constr.preds_of_refinement lookup (vv_value c.Constr.vv_sort) c.Constr.lhs
  in
  (facts, lhs_preds @ guards)

(* -- Solving ------------------------------------------------------------------------- *)

let solve ?(quals = Qualifier.defaults) ?(consts = []) (wfs : Constr.wf list)
    (subs : Constr.sub list) : result =
  let stats = { iterations = 0; implication_checks = 0; initial_candidates = 0 } in
  let initial = init_assignment ~consts quals wfs in
  let assignment = ref initial in
  KMap.iter
    (fun _ ps -> stats.initial_candidates <- stats.initial_candidates + List.length ps)
    !assignment;
  let lookup k =
    match KMap.find_opt k !assignment with
    | Some ps -> List.map fst ps
    | None -> []
  in
  (* Dependency index: κ -> constraints that must be re-checked when the
     assignment of κ weakens. *)
  let depends : Constr.sub list IMap.t =
    List.fold_left
      (fun acc c ->
        if writes c = None then acc
        else
          List.fold_left
            (fun acc k ->
              IMap.update k
                (function None -> Some [ c ] | Some cs -> Some (c :: cs))
                acc)
            acc (reads c))
      IMap.empty subs
  in
  (* Worklist of κ-rhs constraints, deduplicated by id. *)
  let module ISet = Set.Make (Int) in
  let queue = Queue.create () in
  let queued = ref ISet.empty in
  let push c =
    if not (ISet.mem c.Constr.sub_id !queued) then begin
      queued := ISet.add c.Constr.sub_id !queued;
      Queue.add c queue
    end
  in
  List.iter (fun c -> if writes c <> None then push c) subs;
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    queued := ISet.remove c.Constr.sub_id !queued;
    stats.iterations <- stats.iterations + 1;
    match c.Constr.rhs with
    | Constr.Rconc _ -> ()
    | Constr.Rkvar (k, theta) ->
        let current =
          match KMap.find_opt k !assignment with Some ps -> ps | None -> []
        in
        if current <> [] then begin
          let hyps, kept = hypotheses lookup c in
          let goal_of (q, _) = Pred.subst theta q in
          (* Fast path: if the whole conjunction is implied, keep all. *)
          stats.implication_checks <- stats.implication_checks + 1;
          let all_ok =
            Solver.check_valid ~kept hyps (Pred.conj (List.map goal_of current))
            = Solver.Valid
          in
          let retained =
            if all_ok then current
            else
              List.filter
                (fun q ->
                  stats.implication_checks <- stats.implication_checks + 1;
                  Solver.check_valid ~kept hyps (goal_of q) = Solver.Valid)
                current
          in
          if List.length retained <> List.length current then begin
            assignment := KMap.add k retained !assignment;
            match IMap.find_opt k depends with
            | Some cs -> List.iter push cs
            | None -> ()
          end
        end
  done;
  (* Final pass: concrete obligations. *)
  let failures =
    List.filter_map
      (fun c ->
        match c.Constr.rhs with
        | Constr.Rkvar _ -> None
        | Constr.Rconc goal ->
            if Pred.equal goal Pred.tt then None
            else begin
              stats.implication_checks <- stats.implication_checks + 1;
              let hyps, kept = hypotheses lookup c in
              Solver.last_cex := [];
              match Solver.check_valid ~kept hyps goal with
              | Solver.Valid -> None
              | Solver.Invalid ->
                  Some
                    {
                      f_origin = c.Constr.origin;
                      f_goal = goal;
                      f_cex = !Solver.last_cex;
                    }
              | Solver.Unknown ->
                  Some
                    { f_origin = c.Constr.origin; f_goal = goal; f_cex = [] }
            end)
      subs
  in
  (* Dead qualifiers: patterns that contributed at least one initial
     instance to some κ but whose every instance was pruned everywhere. *)
  let names_of asg =
    KMap.fold
      (fun _ ps acc ->
        List.fold_left (fun acc (_, ns) -> SSet.union ns acc) acc ps)
      asg SSet.empty
  in
  let dead_quals =
    SSet.elements (SSet.diff (names_of initial) (names_of !assignment))
  in
  {
    solution = KMap.map (List.map fst) !assignment;
    failures;
    solver_stats = stats;
    dead_quals;
  }

(* -- Applying solutions ----------------------------------------------------------------- *)

(** Replace every κ in [t] by (the conjunction of) its solution. *)
let rec apply_solution (sol : Pred.t list KMap.t) (t : Rtype.t) : Rtype.t =
  let refinement (r : Rtype.refinement) : Rtype.refinement =
    let solved =
      List.concat_map
        (fun (k, theta) ->
          let ps = match KMap.find_opt k sol with Some ps -> ps | None -> [] in
          List.map (Pred.subst theta) ps)
        r.Rtype.kvars
    in
    Rtype.known (Pred.conj (r.Rtype.preds :: solved))
  in
  match t with
  | Rtype.Base (b, r) -> Rtype.Base (b, refinement r)
  | Rtype.Fun (x, t1, t2) ->
      Rtype.Fun (x, apply_solution sol t1, apply_solution sol t2)
  | Rtype.Tuple ts -> Rtype.Tuple (List.map (apply_solution sol) ts)
  | Rtype.List (t, r) -> Rtype.List (apply_solution sol t, refinement r)
  | Rtype.Array (t, r) -> Rtype.Array (apply_solution sol t, refinement r)
  | Rtype.Tyvar (k, r) -> Rtype.Tyvar (k, refinement r)
