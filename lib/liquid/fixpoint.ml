(** Liquid constraint solving by predicate abstraction.

    This is the paper's [Solve]/[Weaken] fixpoint:

    1. every κ is initialized to the set of {e all} well-sorted qualifier
       instances over the variables in scope at its well-formedness
       constraint (the strongest liquid refinement);
    2. constraints with a κ right-hand side are repeatedly {e weakened}:
       any instance not implied by the constraint's antecedent (under the
       current assignment) is dropped, and constraints reading the changed
       κ are re-queued;
    3. on stabilization, constraints with {e concrete} right-hand sides
       (assertions, primitive preconditions, user annotations) are
       checked; failures are reported with their source origin.

    Implications are discharged by {!Liquid_smt.Solver}; an "unknown"
    verdict counts as "not valid" (sound: κs only get weaker, and concrete
    checks only fail more).

    Two engines implement the weakening loop:

    - the {e naive} reference re-embeds every constraint's environment on
      each worklist pop and re-checks every candidate instance (kept for
      the A2 ablation and as an executable specification);
    - the {e incremental} engine (default) compiles each constraint's
      antecedent once into static facts plus per-κ instantiation sites
      ({!Constr.compile_env}), and records, per (constraint, instance),
      which κs the validating query's retained hypotheses came from.  On
      requeue, an instance is re-checked only if some κ it depends on has
      weakened since its last validation.  This skip is {e exact}, not
      just sound: relevance pruning is monotone, so weakening a κ outside
      the recorded dependency set leaves the instance's pruned query —
      and hence its verdict — byte-identical.  A second, finer skip on
      the interned tags of the retained hypotheses catches instances
      whose pruned query survives even though a dependency κ changed.
      Both engines compute the same solution, in the same candidate
      order.

    The engine itself is organized around {e solve units}
    ({!Constr.partition}): all mutable state — worklist, assignment
    fragment, compiled constraints, κ versions, counters — lives in a
    per-unit record created by {!solve_unit}, never in module globals.
    {!solve} runs the whole system as a single unit (the reference,
    byte-identical to the pre-partitioned engine); the parallel
    scheduler ({!Liquid_engine.Psolve}) runs one unit per κ-SCC in
    topological order, merging the resulting {!partial}s with the pure
    helpers below. *)

open Liquid_common
open Liquid_logic
open Liquid_smt

module KMap = Constr.KMap
module IMap = Map.Make (Int)
module ISet = Set.Make (Int)
module SSet = Set.Make (String)

type failure = {
  f_sub_id : int; (* the failing constraint, for explanation lookups *)
  f_origin : Constr.origin;
  f_goal : Pred.t; (* the unprovable obligation, under the final solution *)
  f_cex : (string * Solver.cex_value) list;
      (* falsifying values, when available *)
}

type stats = {
  mutable iterations : int; (* worklist pops *)
  mutable implication_checks : int;
  mutable initial_candidates : int;
  mutable skipped_rechecks : int;
      (* instances retained without a solver call because no κ in their
         recorded dependency set weakened (incremental engine only) *)
  mutable alpha_collapsed : int;
      (* instances collapsed by orientation-level dedup at instantiation *)
  mutable pruned_dedup : int; (* parked by the pre-fixpoint prune phases *)
  mutable pruned_refuted : int;
  mutable pruned_subsumed : int;
  mutable reinstated : int;
      (* parked/weakened instances restored by the post-fixpoint
         reinstatement pass *)
  mutable solve_time : float; (* seconds in the weakening loop *)
  mutable check_time : float; (* seconds checking concrete obligations *)
  mutable prune_time : float; (* seconds in the pre-fixpoint prune pass *)
  mutable reinstate_time : float; (* seconds in the reinstatement pass *)
}

type result = {
  solution : Pred.t list KMap.t;
  failures : failure list;
  solver_stats : stats;
  dead_quals : string list;
      (* qualifier patterns with at least one initial instance, none of
         which survived weakening in any κ *)
}

(* -- Initialization ---------------------------------------------------------- *)

(** Initial assignment: qualifier instances per κ, intersected over all of
    the κ's well-formedness environments.  Each instance carries the names
    of the qualifier patterns that produced it, so the solver can report
    patterns whose every instance gets pruned. *)
let init_assignment ?(consts = []) ?collapsed (quals : Qualifier.t list)
    (wfs : Constr.wf list) : (Pred.t * SSet.t) list KMap.t =
  List.fold_left
    (fun acc (wf : Constr.wf) ->
      let scope = Constr.scope_of_env wf.Constr.wf_env in
      let insts =
        List.map
          (fun (p, names) -> (p, SSet.of_list names))
          (Qualifier.instances_tagged ~consts ?collapsed quals
             ~vv_sort:wf.Constr.wf_sort ~scope)
      in
      match KMap.find_opt wf.Constr.wf_kvar acc with
      | None -> KMap.add wf.Constr.wf_kvar insts acc
      | Some prev ->
          let inter =
            List.filter_map
              (fun (p, names) ->
                match List.find_opt (fun (q, _) -> Pred.equal p q) insts with
                | Some (_, names') -> Some (p, SSet.union names names')
                | None -> None)
              prev
          in
          KMap.add wf.Constr.wf_kvar inter acc)
    KMap.empty wfs

(* -- Dependency index ----------------------------------------------------------- *)

(* The κs a constraint reads/writes live in {!Constr} ([Constr.reads],
   [Constr.writes]), shared with the partition planner. *)
let reads = Constr.reads
let writes = Constr.writes

(* -- Checking --------------------------------------------------------------------- *)

let vv_value (sort : Sort.t) : Pred.value =
  match sort with
  | Sort.Bool -> Pred.Pr (Pred.bvar Ident.vv)
  | s -> Pred.Tm (Term.var Ident.vv s)

(** Antecedent of a constraint under the current assignment: prunable
    binding facts plus guards (kept verbatim by the solver so that
    contradictory path conditions are never pruned away). *)
let hypotheses lookup (c : Constr.sub) : Pred.t list * Pred.t list =
  let facts, guards = Constr.embed_env lookup c.Constr.sub_env in
  let lhs_preds =
    Constr.preds_of_refinement lookup (vv_value c.Constr.vv_sort) c.Constr.lhs
  in
  (facts, lhs_preds @ guards)

(* -- Counterexample evaluation -------------------------------------------------- *)

(* A strict evaluator over a solver counterexample, for the
   model-guided elimination rounds of reinstatement.  Values come from
   [Solver.last_cex_raw], keyed by original entity labels (the display
   model of [Solver.last_cex] strips alpha-renaming suffixes, so
   distinct solver variables can collide on one label there).  Labels
   that do collide with conflicting values are poisoned, and any
   sub-term without a grounded model value raises [Unvalued] — unlike
   {!Pred.eval}, this evaluator never guesses, so a [false] verdict is
   a genuine semantic refutation under the model. *)

exception Unvalued

type model_table = (string, Solver.cex_value option) Hashtbl.t

let model_table (cex : (string * Solver.cex_value) list) : model_table =
  let h : model_table = Hashtbl.create 16 in
  List.iter
    (fun (l, v) ->
      match Hashtbl.find_opt h l with
      | None -> Hashtbl.replace h l (Some v)
      | Some (Some v') when v' = v -> ()
      | Some _ -> Hashtbl.replace h l None)
    cex;
  h

let model_value (m : model_table) (label : string) : Solver.cex_value =
  match Hashtbl.find_opt m label with
  | Some (Some v) -> v
  | _ -> raise Unvalued

let rec eval_term (m : model_table) (t : Term.t) : int =
  match Term.view t with
  | Term.Int n -> n
  | Term.Var (x, _) -> (
      (* Variable entities are labelled by their raw identifier (the
         pretty-printer's [VV -> v] and ['%'] rewrites do not apply). *)
      match model_value m (Ident.to_string x) with
      | Solver.Vint n -> n
      | Solver.Vbool _ -> raise Unvalued)
  | Term.App _ -> (
      (* Application entities are labelled by their rendering. *)
      match model_value m (Term.to_string t) with
      | Solver.Vint n -> n
      | Solver.Vbool _ -> raise Unvalued)
  | Term.Neg a -> -eval_term m a
  | Term.Add (a, b) -> eval_term m a + eval_term m b
  | Term.Sub (a, b) -> eval_term m a - eval_term m b
  | Term.Mul (a, b) -> eval_term m a * eval_term m b

let eval_brel (r : Pred.brel) (a : int) (b : int) : bool =
  match r with
  | Pred.Eq -> a = b
  | Pred.Ne -> a <> b
  | Pred.Lt -> a < b
  | Pred.Le -> a <= b
  | Pred.Gt -> a > b
  | Pred.Ge -> a >= b

let rec eval_pred (m : model_table) (p : Pred.t) : bool =
  match Pred.view p with
  | Pred.True -> true
  | Pred.False -> false
  | Pred.Atom (a, r, b) -> eval_brel r (eval_term m a) (eval_term m b)
  | Pred.Bvar x -> (
      match model_value m (Ident.to_string x) with
      | Solver.Vbool b -> b
      | Solver.Vint _ -> raise Unvalued)
  | Pred.Not p -> not (eval_pred m p)
  | Pred.And ps -> List.for_all (eval_pred m) ps
  | Pred.Or ps -> List.exists (eval_pred m) ps
  | Pred.Imp (a, b) -> (not (eval_pred m a)) || eval_pred m b
  | Pred.Iff (a, b) -> eval_pred m a = eval_pred m b

(* -- Worklist ------------------------------------------------------------------------- *)

(* The two engines share initialization, the dependency-directed worklist,
   the final concrete pass, and dead-qualifier reporting; they differ only
   in how a popped κ-rhs constraint is weakened. *)

(* Counterexample-guided elimination state (reinstatement only): a pool
   of models harvested from failing checks, plus a per-constraint
   two-armed bandit choosing between the two ways of deciding a writer
   visit.  A visit with [n] pending instances can be decided
   conjunction-first (one query; on [Invalid], fall through to per-goal
   checks) or per-goal only.  A [Valid] conjunction confirms all [n]
   instances for one query — but because the negated goal is a
   disjunction the unit-propagation fast path cannot touch, it pays for
   propositional model search over the whole environment, which on
   arithmetic-heavy programs dwarfs [n] fast-path per-goal checks;
   elsewhere (shallow environments, cheap theory calls) one conjunction
   beats [n] queries' worth of per-query overhead.  Neither arm wins
   globally, so each constraint tracks an EMA of {e work per instance}
   under each arm and plays the cheaper one, revisiting the losing arm
   periodically in case the regime shifts.  Work is metered in
   {!Solver.work_total} units (theory calls + LIA nodes), which the
   solver replays on cache hits — so the decisions, and with them the
   solver query counts, are deterministic and independent of machine
   load and cache temperature. *)
type visit_arms = {
  mutable av_visits : int; (* decided writer visits of this constraint *)
  mutable av_conj : float; (* EMA: work per instance, conjunction-first *)
  mutable av_indiv : float; (* EMA: work per instance, per-goal only *)
      (* negative: the arm has not been sampled by this constraint yet *)
}

type cex_elim = {
  pool : model_table list ref;
  mutable harvests : int; (* models harvested so far *)
  arms : (int, visit_arms) Hashtbl.t; (* constraint id -> bandit state *)
  (* Global prior: running mean work/instance of each arm across every
     constraint, consulted where a constraint has no sample of its own.
     Environment character (deep vs shallow, arithmetic-heavy vs not) is
     largely a property of the program, so a sibling's experience is a
     far better first guess than a forced sample of an arm the whole
     workload has already shown to be expensive. *)
  mutable g_conj : float;
  mutable g_conj_n : int;
  mutable g_indiv : float;
  mutable g_indiv_n : int;
}

type shared = {
  stats : stats;
  assignment : (Pred.t * SSet.t) list KMap.t ref;
  lookup : Rtype.kvar -> Pred.t list;
  push_dependents : Rtype.kvar -> unit;
  settled : Rtype.kvar -> Pred.t -> bool;
      (* instances known to be in the final solution; exempt from every
         check.  Constantly [false] during the main loop; during
         reinstatement it holds the pruned run's survivors. *)
  cex_pool : cex_elim option;
      (* counterexample-guided elimination (reinstatement only): a pool
         of models harvested from failing checks.  A pending instance
         whose prepared query evaluates to [true] under a pooled model
         is semantically satisfiable — the instance dies with no solver
         contact at all.  [None] during the main loop. *)
}

let run_worklist ?(settled = fun _ _ -> false) ?cex_pool
    (subs : Constr.sub list)
    (stats : stats) (assignment : (Pred.t * SSet.t) list KMap.t ref)
    ~(base : Constr.solution)
    ~(weaken : shared -> Constr.sub -> Rtype.kvar -> Pred.subst -> unit) :
    unit =
  (* Owned κs resolve through the unit's own (mutable) assignment;
     anything else is an upstream κ, final for the lifetime of this
     unit, resolved through the read-only [base]. *)
  let lookup k =
    match KMap.find_opt k !assignment with
    | Some ps -> List.map fst ps
    | None -> Constr.sol_find base k
  in
  (* Dependency index: κ -> constraints that must be re-checked when the
     assignment of κ weakens. *)
  let depends : Constr.sub list IMap.t =
    List.fold_left
      (fun acc c ->
        if writes c = None then acc
        else
          List.fold_left
            (fun acc k ->
              IMap.update k
                (function None -> Some [ c ] | Some cs -> Some (c :: cs))
                acc)
            acc (reads c))
      IMap.empty subs
  in
  (* Worklist of κ-rhs constraints, deduplicated by id. *)
  let queue = Queue.create () in
  let queued = ref ISet.empty in
  let push c =
    if not (ISet.mem c.Constr.sub_id !queued) then begin
      queued := ISet.add c.Constr.sub_id !queued;
      Queue.add c queue
    end
  in
  let push_dependents k =
    match IMap.find_opt k depends with
    | Some cs -> List.iter push cs
    | None -> ()
  in
  let shared =
    { stats; assignment; lookup; push_dependents; settled; cex_pool }
  in
  List.iter (fun c -> if writes c <> None then push c) subs;
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    queued := ISet.remove c.Constr.sub_id !queued;
    stats.iterations <- stats.iterations + 1;
    match c.Constr.rhs with
    | Constr.Rconc _ -> ()
    | Constr.Rkvar (k, theta) -> weaken shared c k theta
  done

(* -- Naive weakening ------------------------------------------------------------------ *)

let weaken_naive (sh : shared) (c : Constr.sub) (k : Rtype.kvar)
    (theta : Pred.subst) : unit =
  let current =
    match KMap.find_opt k !(sh.assignment) with Some ps -> ps | None -> []
  in
  let checkable =
    List.filter (fun (q, _) -> not (sh.settled k q)) current
  in
  if checkable <> [] then begin
    let hyps, kept = hypotheses sh.lookup c in
    let goal_of (q, _) = Pred.subst theta q in
    (* Fast path: if the whole conjunction is implied, keep all. *)
    sh.stats.implication_checks <- sh.stats.implication_checks + 1;
    let all_ok =
      Solver.check_valid ~kept hyps (Pred.conj (List.map goal_of checkable))
      = Solver.Valid
    in
    let retained =
      if all_ok then current
      else
        List.filter
          (fun ((q, _) as inst) ->
            sh.settled k q
            ||
            (sh.stats.implication_checks <- sh.stats.implication_checks + 1;
             Solver.check_valid ~kept hyps (goal_of inst) = Solver.Valid))
          current
    in
    if List.length retained <> List.length current then begin
      sh.assignment := KMap.add k retained !(sh.assignment);
      sh.push_dependents k
    end
  end

(* -- Incremental weakening ------------------------------------------------------------ *)

(** Per-constraint compiled state.  [checks] maps an instance's interned
    tag to its last validation's dependency record: the κ/version pairs
    the verdict could depend on — the κs of hypotheses retained by
    relevance pruning, plus every lhs κ (lhs preds are exempt from
    pruning, so the query always contains them) — and the interned tags
    of those retained hypotheses.  The tags give a second, finer skip:
    hypotheses only ever shrink, so if every retained hypothesis is still
    present (and the lhs κs are unchanged), the pruned query is
    byte-identical to the one that validated, whatever else changed. *)
type compiled = {
  hyp_slots : Constr.slot list; (* environment facts; prunable *)
  kept_slots : Constr.slot list; (* lhs preds @ guards; unpruned *)
  lhs_ks : ISet.t;
  checks : (int, (int * int) list * ISet.t) Hashtbl.t;
}

let compile_sub (c : Constr.sub) : compiled =
  {
    hyp_slots = Constr.compile_env c.Constr.sub_env;
    kept_slots =
      Constr.compile_refinement (vv_value c.Constr.vv_sort) c.Constr.lhs
      @ List.map (fun g -> Constr.Sstatic g) c.Constr.sub_env.Constr.guards;
    lhs_ks = ISet.of_list (List.map fst c.Constr.lhs.Rtype.kvars);
    checks = Hashtbl.create 16;
  }

(** Expand environment slots under the current solution.  Returns the
    hypothesis list (matching {!Constr.embed_env}'s facts exactly,
    including the [tt] filter on instantiated κ preds) and, aligned with
    it, the κ each hypothesis came from ([None] for static facts). *)
let expand_hyps lookup (slots : Constr.slot list) :
    Pred.t list * Rtype.kvar option array =
  let rev = ref [] in
  List.iter
    (function
      | Constr.Sstatic p -> rev := (p, None) :: !rev
      | Constr.Ssite (k, inst) ->
          List.iter
            (fun q ->
              let p = inst q in
              if not (Pred.is_true p) then rev := (p, Some k) :: !rev)
            (lookup k))
    slots;
  let items = List.rev !rev in
  (List.map fst items, Array.of_list (List.map snd items))

(** Expand kept slots (no [tt] filtering, matching the eager path). *)
let expand_kept lookup (slots : Constr.slot list) : Pred.t list =
  List.concat_map
    (function
      | Constr.Sstatic p -> [ p ]
      | Constr.Ssite (k, inst) -> List.map inst (lookup k))
    slots

let weaken_incremental (compiled_of : Constr.sub -> compiled)
    (version : (int, int) Hashtbl.t) (sh : shared) (c : Constr.sub)
    (k : Rtype.kvar) (theta : Pred.subst) : unit =
  let ver k = match Hashtbl.find_opt version k with Some v -> v | None -> 0 in
  let current =
    match KMap.find_opt k !(sh.assignment) with Some ps -> ps | None -> []
  in
  if current <> [] then begin
    let comp = compiled_of c in
    let goal_of (q, _) = Pred.subst theta q in
    let up_to_date (q, _) =
      match Hashtbl.find_opt comp.checks (Pred.tag q) with
      | None -> false
      | Some (deps, _) -> List.for_all (fun (k', v) -> ver k' = v) deps
    in
    let stale =
      List.filter
        (fun ((q, _) as inst) ->
          (not (sh.settled k q)) && not (up_to_date inst))
        current
    in
    sh.stats.skipped_rechecks <-
      sh.stats.skipped_rechecks + (List.length current - List.length stale);
    if stale <> [] then begin
      let hyps, origins = expand_hyps sh.lookup comp.hyp_slots in
      let kept = expand_kept sh.lookup comp.kept_slots in
      (* Interned tags of the current hypotheses, and every κ each tag is
         instantiated from (hash-consing can make two sites produce the
         same predicate, in which case it survives until both drop it).
         Built lazily: the tables only serve the tag-identity skip below,
         which can't fire on a first visit (no records exist yet). *)
      let hyp_arr = Array.of_list hyps in
      let tag_tables =
        lazy
          (let hyp_tags = ref ISet.empty in
           let tag_origins : (int, ISet.t) Hashtbl.t = Hashtbl.create 64 in
           Array.iteri
             (fun i h ->
               let t = Pred.tag h in
               hyp_tags := ISet.add t !hyp_tags;
               match origins.(i) with
               | None -> ()
               | Some k' ->
                   let prev =
                     match Hashtbl.find_opt tag_origins t with
                     | Some s -> s
                     | None -> ISet.empty
                   in
                   Hashtbl.replace tag_origins t (ISet.add k' prev))
             hyp_arr;
           (!hyp_tags, tag_origins))
      in
      (* Dependency record of a verdict: κs of pruned-in hypotheses plus
         lhs κs (unpruned), stamped with their current versions, and the
         tags of the pruned-in hypotheses. *)
      let deps_of idx =
        let tags, ks =
          List.fold_left
            (fun (tags, ks) i ->
              match origins.(i) with
              | Some k' ->
                  (ISet.add (Pred.tag hyp_arr.(i)) tags, ISet.add k' ks)
              | None -> (tags, ks))
            (ISet.empty, comp.lhs_ks) idx
        in
        (List.map (fun k' -> (k', ver k')) (ISet.elements ks), tags)
      in
      let record (q, _) deps = Hashtbl.replace comp.checks (Pred.tag q) deps in
      (* Second-chance skip: hypotheses only ever shrink, so if every
         pruned-in hypothesis of an instance's last validating query is
         still present — and the lhs κs (whose preds are exempt from
         pruning) are unchanged — then relevance pruning reproduces that
         query byte-for-byte and the instance is still Valid.  Costs a
         tag-set check; no solver interaction at all. *)
      let still_identical (q, _) =
        match Hashtbl.find_opt comp.checks (Pred.tag q) with
        | None -> false
        | Some (deps, tags) ->
            List.for_all
              (fun (k', v) -> (not (ISet.mem k' comp.lhs_ks)) || ver k' = v)
              deps
            && ISet.subset tags (fst (Lazy.force tag_tables))
      in
      let revalidate (q, _) tags =
        (* Re-stamp with current versions; origins are recomputed because
           a surviving predicate may now be owed to different κs. *)
        let tag_origins = snd (Lazy.force tag_tables) in
        let ks =
          ISet.fold
            (fun t acc ->
              match Hashtbl.find_opt tag_origins t with
              | Some s -> ISet.union s acc
              | None -> acc)
            tags comp.lhs_ks
        in
        let deps = List.map (fun k' -> (k', ver k')) (ISet.elements ks) in
        Hashtbl.replace comp.checks (Pred.tag q) (deps, tags)
      in
      let pending =
        List.filter
          (fun ((q, _) as inst) ->
            match Hashtbl.find_opt comp.checks (Pred.tag q) with
            | Some (_, tags) when still_identical inst ->
                sh.stats.skipped_rechecks <- sh.stats.skipped_rechecks + 1;
                revalidate inst tags;
                false
            | _ -> true)
          stale
      in
      (* Fast path: one query for the conjunction of the still-undecided
         goals.  Its pruning seed covers every individual goal, so its
         retained-κ set is a (conservative) superset of each instance's
         own. *)
      let retained =
        if pending = [] then current
        else begin
          let valid = ref ISet.empty in
          let confirm_all insts idx =
            let deps = deps_of idx in
            List.iter
              (fun ((q, _) as inst) ->
                record inst deps;
                valid := ISet.add (Pred.tag q) !valid)
              insts
          in
          (* Decide each instance on its own prepared query — built
             once, probed against the cache, SAT-checked only on a
             miss. *)
          let individually insts =
            List.iter
              (fun ((q, _) as inst) ->
                sh.stats.implication_checks <- sh.stats.implication_checks + 1;
                let prep = Solver.prepare ~kept hyps (goal_of inst) in
                if Solver.check_query prep = Solver.Valid then begin
                  record inst (deps_of prep.Solver.pruned_idx);
                  valid := ISet.add (Pred.tag q) !valid
                end)
              insts
          in
          (* With a counterexample pool, a failing check is not a dead
             end.  A pending instance dies for free when a pooled model
             makes its {e prepared} per-goal query ([¬goal] plus its own
             relevance-pruned hypotheses) evaluate to [true]: that is a
             semantic satisfiability certificate for exactly the query
             the unpruned engine would have SAT-checked.  Each failing
             check contributes its fresh model to the pool, so one paid
             query buries every pool-refutable goal of this — and every
             later — writer visit. *)
          let elim = sh.cex_pool in
          let preps : (int, Solver.prepared) Hashtbl.t = Hashtbl.create 16 in
          let prep_of ((q, _) as inst) =
            match Hashtbl.find_opt preps (Pred.tag q) with
            | Some p -> p
            | None ->
                let p = Solver.prepare ~kept hyps (goal_of inst) in
                Hashtbl.add preps (Pred.tag q) p;
                p
          in
          let killed_by _e m inst =
            match eval_pred m (prep_of inst).Solver.query with
            | b -> b
            | exception Unvalued -> false
          in
          (* Full pool scan, with move-to-front on a kill: a model that
             refutes one instance tends to refute its siblings too, so
             successful killers drift to the head of the scan order. *)
          let pool_kills e inst =
            let rec go seen = function
              | [] -> false
              | m :: rest ->
                  if killed_by e m inst then begin
                    (if seen <> [] then
                       e.pool := m :: List.rev_append seen rest);
                    true
                  end
                  else go (m :: seen) rest
            in
            go [] !(e.pool)
          in
          let pool_filter insts =
            match elim with
            | None -> insts
            | Some e -> List.filter (fun inst -> not (pool_kills e inst)) insts
          in
          let harvest_model e =
            match !Solver.last_cex_raw with
            | [] -> ()
            | cex ->
                e.pool := model_table cex :: Listx.take 7 !(e.pool);
                e.harvests <- e.harvests + 1
          in
          (* Individual decisions, pool-accelerated: a pool-refuted
             instance costs nothing; a freshly failing one contributes
             its model, so deaths cascade within — and across — writer
             visits.  Every caller has just pool-filtered [insts], so
             only models harvested {e since entry} need scanning.
             Returns the number of instances that failed. *)
          let individually_pooled e insts =
            let entry = e.harvests in
            let deaths = ref 0 in
            List.iter
              (fun ((q, _) as inst) ->
                let fresh = Listx.take (e.harvests - entry) !(e.pool) in
                if List.exists (fun m -> killed_by e m inst) fresh then
                  incr deaths
                else begin
                  sh.stats.implication_checks <-
                    sh.stats.implication_checks + 1;
                  let prep = prep_of inst in
                  Solver.last_cex_raw := [];
                  match Solver.check_query prep with
                  | Solver.Valid ->
                      record inst (deps_of prep.Solver.pruned_idx);
                      valid := ISet.add (Pred.tag q) !valid
                  | Solver.Invalid | Solver.Unknown ->
                      incr deaths;
                      harvest_model e
                end)
              insts;
            !deaths
          in
          let conjoined insts =
            sh.stats.implication_checks <- sh.stats.implication_checks + 1;
            Solver.last_cex_raw := [];
            let conj_res, conj_idx =
              Solver.check_valid_idx ~kept hyps
                (Pred.conj (List.map goal_of insts))
            in
            match (conj_res, elim) with
            | Solver.Valid, _ -> confirm_all insts conj_idx
            | Solver.Invalid, Some e -> (
                match insts with
                | [ _ ] -> () (* sole culprit: refuted, not retained *)
                | _ ->
                    (* Someone in the group failed.  Pay at most one
                       conjunction per visit: seed the pool with its
                       model and fall through to individual
                       decisions. *)
                    harvest_model e;
                    ignore (individually_pooled e (pool_filter insts)))
            | _, _ -> individually insts
          in
          (* Per-instance work of a visit body, in deterministic solver
             units.  Each issued query also pays a fixed cost the work
             counter cannot see — prepare's relevance closure, query
             construction, interning — all roughly linear in the
             environment, so it is priced at one hypothesis-count per
             query. *)
          let visit_work n f =
            let q0 = Solver.stats.Solver.queries in
            let w0 = !Solver.work_total in
            f ();
            (float_of_int (!Solver.work_total - w0)
            +. float_of_int
                 (((List.length hyps / 4) + 4)
                 * (Solver.stats.Solver.queries - q0)))
            /. float_of_int n
          in
          let rounds insts =
            match pool_filter insts with
            | [] -> ()
            | insts -> (
                match elim with
                | None -> conjoined insts
                | Some e ->
                    let st =
                      match Hashtbl.find_opt e.arms c.Constr.sub_id with
                      | Some st -> st
                      | None ->
                          let st =
                            { av_visits = 0; av_conj = -1.0; av_indiv = -1.0 }
                          in
                          Hashtbl.add e.arms c.Constr.sub_id st;
                          st
                    in
                    (* Estimate each arm from this constraint's own
                       samples, falling back to the global prior; play
                       the cheaper arm, sampling any arm the whole run
                       has never tried.  Every 16th visit replays the
                       losing arm so a regime shift is eventually
                       noticed. *)
                    let est own sum cnt =
                      if own >= 0.0 then own
                      else if cnt > 0 then sum /. float_of_int cnt
                      else -1.0
                    in
                    let ec = est st.av_conj e.g_conj e.g_conj_n in
                    let ei = est st.av_indiv e.g_indiv e.g_indiv_n in
                    let use_conj =
                      if ec < 0.0 then true
                      else if ei < 0.0 then false
                      else if st.av_visits land 15 = 15 then ec >= ei
                      else ec < ei
                    in
                    let per =
                      visit_work (List.length insts) (fun () ->
                          if use_conj then conjoined insts
                          else ignore (individually_pooled e insts))
                    in
                    (if use_conj then begin
                       st.av_conj <-
                         (if st.av_conj < 0.0 then per
                          else (st.av_conj +. per) /. 2.0);
                       e.g_conj <- e.g_conj +. per;
                       e.g_conj_n <- e.g_conj_n + 1
                     end
                     else begin
                       st.av_indiv <-
                         (if st.av_indiv < 0.0 then per
                          else (st.av_indiv +. per) /. 2.0);
                       e.g_indiv <- e.g_indiv +. per;
                       e.g_indiv_n <- e.g_indiv_n + 1
                     end);
                    st.av_visits <- st.av_visits + 1)
          in
          rounds pending;
          if
            List.for_all
              (fun (q, _) -> ISet.mem (Pred.tag q) !valid)
              pending
          then current
          else
            List.filter
              (fun ((q, _) as inst) ->
                ISet.mem (Pred.tag q) !valid
                || sh.settled k q || up_to_date inst)
              current
        end
      in
      if List.length retained <> List.length current then begin
        sh.assignment := KMap.add k retained !(sh.assignment);
        Hashtbl.replace version k (ver k + 1);
        sh.push_dependents k
      end
    end
  end

(* -- Solving one unit --------------------------------------------------------------- *)

(** Candidate assignment: per κ, the surviving qualifier instances, each
    carrying the names of the patterns that produced it. *)
type candidates = (Pred.t * SSet.t) list KMap.t

(** Global SMT-counter movement during a unit's solve, so a parent
    process can fold a worker's solver activity into its own counters
    (the worker's {!Solver.stats} die with the worker). *)
type smt_delta = {
  d_queries : int;
  d_cache_hits : int;
  d_sat_checks : int;
  d_unknowns : int;
}

(** Result of solving one unit: the final assignment of its κs, its
    concrete-check failures keyed by [sub_id] (for deterministic
    cross-unit ordering), its counters, and its SMT-counter delta. *)
type partial = {
  pr_solution : candidates;
  pr_failures : (int * failure) list;
  pr_stats : stats;
  pr_smt : smt_delta;
}

(* Versions the marshalled [partial] layout for the persistent
   partition cache.  The executable-stamp check already rejects entries
   across rebuilds; this tag additionally keys the {e meaning} of the
   payload, so a semantic change (what a partial promises, not just its
   shape) can invalidate old entries explicitly. *)
let partial_version = "fixpoint-partial/v1"

let fresh_stats () =
  {
    iterations = 0;
    implication_checks = 0;
    initial_candidates = 0;
    skipped_rechecks = 0;
    alpha_collapsed = 0;
    pruned_dedup = 0;
    pruned_refuted = 0;
    pruned_subsumed = 0;
    reinstated = 0;
    solve_time = 0.0;
    check_time = 0.0;
    prune_time = 0.0;
    reinstate_time = 0.0;
  }

(* -- Reinstatement -------------------------------------------------------------- *)

(* Restore the post-weakening assignment to exactly the solution an
   unpruned run would compute, by an {e optimistic restart}: reset the
   assignment to the full unpruned [init] and run a removal loop over
   only the instances the pruned run does {e not} already vouch for.

   Why this is exact.  The weaken fixpoint computes the greatest
   solution below its initial assignment, so the pruned result G is
   pointwise below the full run's final solution S, and every q ∈ G
   stays valid under any assignment ⊇ G (hypotheses are monotone in the
   assignment) — G's instances can never fail during the removal loop,
   so their checks are skipped outright.  The loop starts from the full
   [init] ⊇ S and only removes instances whose check fails under the
   current (⊇ final) assignment; any solution below [init] survives such
   removals intact, so S is below every intermediate state, and the loop
   stops at a solution — hence at S itself.  This restart handles what a
   one-at-a-time from-below reinstatement cannot: instances that support
   themselves (or each other) through recursive constraints, the normal
   shape of a loop invariant.

   [Dup]-parked instances are never checked: normalization commutes
   with substitution, and canon-equal queries decide identically, so a
   dup is in the final solution iff its representative is.  They sit
   the removal loop out entirely (their representative speaks for them
   in the hypotheses, up to logical equivalence) and are re-added — in
   [init] order, so printed conjunctions are unchanged — once the loop
   converges.

   The loop itself is {!run_worklist} with the pruned run's survivors
   marked [settled]: the same dependency-directed scheduling and (with
   [incremental]) per-instance memoization as the main loop, but every
   check the pruned run already vouches for is skipped.  The work is
   thereby bounded by the parked/weakened instances, not by the full
   candidate population. *)
let reinstate ?(incremental = true) (stats : stats)
    (plan : SSet.t Prune.plan) (subs : Constr.sub list)
    ~(base : Constr.solution) ~(init : candidates)
    (assignment : candidates ref) : unit =
  (* Dup tag -> representative tag. *)
  let is_dup : (int, int) Hashtbl.t = Hashtbl.create 64 in
  KMap.iter
    (fun _ ps ->
      List.iter
        (function
          | p, _, Prune.Dup rep ->
              Hashtbl.replace is_dup (Pred.tag p) (Pred.tag rep)
          | _ -> ())
        ps)
    plan.Prune.parked;
  (* Instances the pruned weaken loop kept: proven members of the final
     solution, exempt from re-checking. *)
  let stable : ISet.t KMap.t =
    KMap.map
      (fun ps -> ISet.of_list (List.map (fun (p, _) -> Pred.tag p) ps))
      !assignment
  in
  let n_stable =
    KMap.fold (fun _ ps n -> n + List.length ps) !assignment 0
  in
  (* Optimistic restart from the full unpruned assignment, dups left
     out. *)
  assignment :=
    KMap.map
      (List.filter (fun (q, _) -> not (Hashtbl.mem is_dup (Pred.tag q))))
      init;
  let settled k q =
    match KMap.find_opt k stable with
    | Some s -> ISet.mem (Pred.tag q) s
    | None -> false
  in
  (if incremental then begin
     let table : (int, compiled) Hashtbl.t = Hashtbl.create 64 in
     let compiled_of c =
       match Hashtbl.find_opt table c.Constr.sub_id with
       | Some comp -> comp
       | None ->
           let comp = compile_sub c in
           Hashtbl.add table c.Constr.sub_id comp;
           comp
     in
     let version : (int, int) Hashtbl.t = Hashtbl.create 64 in
     let elim =
       {
         pool = ref [];
         harvests = 0;
         arms = Hashtbl.create 64;
         g_conj = 0.0;
         g_conj_n = 0;
         g_indiv = 0.0;
         g_indiv_n = 0;
       }
     in
     run_worklist ~settled ~cex_pool:elim subs stats assignment ~base
       ~weaken:(weaken_incremental compiled_of version)
   end
   else run_worklist ~settled subs stats assignment ~base ~weaken:weaken_naive);
  (* Re-add the dups of surviving representatives, in [init] order. *)
  assignment :=
    KMap.mapi
      (fun k full ->
        let live =
          match KMap.find_opt k !assignment with
          | Some ps -> ISet.of_list (List.map (fun (p, _) -> Pred.tag p) ps)
          | None -> ISet.empty
        in
        List.filter
          (fun (q, _) ->
            let t = Pred.tag q in
            match Hashtbl.find_opt is_dup t with
            | Some rep -> ISet.mem rep live
            | None -> ISet.mem t live)
          full)
      init;
  let n_final = KMap.fold (fun _ ps n -> n + List.length ps) !assignment 0 in
  stats.reinstated <- stats.reinstated + (n_final - n_stable)

(** Solve one unit to fixpoint and check its concrete obligations.
    [init] is the initial (strongest) assignment of the unit's own κs;
    [base] holds the final solutions of every upstream κ the unit's
    constraints read.  [prune_wf] (per-κ well-formedness facts, see
    {!Prune.wf_facts}) enables the pre-fixpoint prune analysis and the
    post-fixpoint reinstatement pass.  All engine state is local to this
    call. *)
let solve_unit ?(incremental = true)
    ?(prune_wf : Pred.t list KMap.t option) ~(base : Constr.solution)
    ~(init : candidates) (subs : Constr.sub list) : partial =
  let stats = fresh_stats () in
  let smt0 =
    ( Solver.stats.Solver.queries,
      Solver.stats.Solver.cache_hits,
      Solver.stats.Solver.sat_checks,
      Solver.stats.Solver.unknowns )
  in
  KMap.iter
    (fun _ ps ->
      stats.initial_candidates <- stats.initial_candidates + List.length ps)
    init;
  let plan =
    match prune_wf with
    | None -> None
    | Some wf_facts ->
        let tp = Unix.gettimeofday () in
        let pl = Prune.analyze ~wf_facts subs init in
        stats.pruned_dedup <- pl.Prune.n_dup;
        stats.pruned_refuted <- pl.Prune.n_refuted;
        stats.pruned_subsumed <- pl.Prune.n_subsumed;
        stats.prune_time <- Unix.gettimeofday () -. tp;
        Some pl
  in
  let t0 = Unix.gettimeofday () in
  let assignment =
    ref (match plan with Some pl -> pl.Prune.kept | None -> init)
  in
  (if incremental then begin
     let table : (int, compiled) Hashtbl.t = Hashtbl.create 64 in
     let compiled_of c =
       match Hashtbl.find_opt table c.Constr.sub_id with
       | Some comp -> comp
       | None ->
           let comp = compile_sub c in
           Hashtbl.add table c.Constr.sub_id comp;
           comp
     in
     let version : (int, int) Hashtbl.t = Hashtbl.create 64 in
     run_worklist subs stats assignment ~base
       ~weaken:(weaken_incremental compiled_of version)
   end
   else run_worklist subs stats assignment ~base ~weaken:weaken_naive);
  stats.solve_time <- Unix.gettimeofday () -. t0;
  (match plan with
  | None -> ()
  | Some pl ->
      let tr = Unix.gettimeofday () in
      reinstate ~incremental stats pl subs ~base ~init assignment;
      stats.reinstate_time <- Unix.gettimeofday () -. tr);
  let lookup k =
    match KMap.find_opt k !assignment with
    | Some ps -> List.map fst ps
    | None -> Constr.sol_find base k
  in
  (* Final pass: concrete obligations, in original constraint order. *)
  let t1 = Unix.gettimeofday () in
  let failures =
    List.filter_map
      (fun c ->
        match c.Constr.rhs with
        | Constr.Rkvar _ -> None
        | Constr.Rconc goal ->
            if Pred.equal goal Pred.tt then None
            else begin
              stats.implication_checks <- stats.implication_checks + 1;
              let hyps, kept = hypotheses lookup c in
              Solver.last_cex := [];
              match Solver.check_valid ~kept hyps goal with
              | Solver.Valid -> None
              | Solver.Invalid ->
                  Some
                    ( c.Constr.sub_id,
                      {
                        f_sub_id = c.Constr.sub_id;
                        f_origin = c.Constr.origin;
                        f_goal = goal;
                        f_cex = !Solver.last_cex;
                      } )
              | Solver.Unknown ->
                  Some
                    ( c.Constr.sub_id,
                      {
                        f_sub_id = c.Constr.sub_id;
                        f_origin = c.Constr.origin;
                        f_goal = goal;
                        f_cex = [];
                      } )
            end)
      subs
  in
  stats.check_time <- Unix.gettimeofday () -. t1;
  let q0, h0, s0, u0 = smt0 in
  {
    pr_solution = !assignment;
    pr_failures = failures;
    pr_stats = stats;
    pr_smt =
      {
        d_queries = Solver.stats.Solver.queries - q0;
        d_cache_hits = Solver.stats.Solver.cache_hits - h0;
        d_sat_checks = Solver.stats.Solver.sat_checks - s0;
        d_unknowns = Solver.stats.Solver.unknowns - u0;
      };
  }

(* -- Merging ------------------------------------------------------------------------ *)

(** Pure sum of per-unit counters ([initial_candidates] included: units
    own disjoint κ sets, so per-unit counts partition the global one). *)
let merge_stats (a : stats) (b : stats) : stats =
  {
    iterations = a.iterations + b.iterations;
    implication_checks = a.implication_checks + b.implication_checks;
    initial_candidates = a.initial_candidates + b.initial_candidates;
    skipped_rechecks = a.skipped_rechecks + b.skipped_rechecks;
    alpha_collapsed = a.alpha_collapsed + b.alpha_collapsed;
    pruned_dedup = a.pruned_dedup + b.pruned_dedup;
    pruned_refuted = a.pruned_refuted + b.pruned_refuted;
    pruned_subsumed = a.pruned_subsumed + b.pruned_subsumed;
    reinstated = a.reinstated + b.reinstated;
    solve_time = a.solve_time +. b.solve_time;
    check_time = a.check_time +. b.check_time;
    prune_time = a.prune_time +. b.prune_time;
    reinstate_time = a.reinstate_time +. b.reinstate_time;
  }

(** Pure union of unit solutions (unit κ sets are disjoint by
    construction, so the merge direction is immaterial). *)
let merge_solutions (a : candidates) (b : candidates) : candidates =
  KMap.union (fun _ ps _ -> Some ps) a b

(** Dead qualifiers of a merged run: patterns with an initial instance
    in some κ of [initial], none of which survived into [final]. *)
let dead_qualifiers ~(initial : candidates) ~(final : candidates) :
    string list =
  let names_of asg =
    KMap.fold
      (fun _ ps acc ->
        List.fold_left (fun acc (_, ns) -> SSet.union ns acc) acc ps)
      asg SSet.empty
  in
  SSet.elements (SSet.diff (names_of initial) (names_of final))

(** Re-intern a partial that crossed a process boundary: every predicate
    in it is physically foreign after unmarshalling and must be mapped
    to this process's canonical nodes before it can meet native
    predicates (see {!Pred.rehasher}). *)
let rehash_partial (p : partial) : partial =
  let go = Pred.rehasher () in
  {
    p with
    pr_solution =
      KMap.map (List.map (fun (q, ns) -> (go q, ns))) p.pr_solution;
    pr_failures =
      List.map
        (fun (id, f) -> (id, { f with f_goal = go f.f_goal }))
        p.pr_failures;
  }

(* -- Solving ------------------------------------------------------------------------- *)

let solve ?(quals = Qualifier.defaults) ?(consts = []) ?(incremental = true)
    ?(prune = false) (wfs : Constr.wf list) (subs : Constr.sub list) : result
    =
  let collapsed = ref 0 in
  let initial = init_assignment ~consts ~collapsed quals wfs in
  let prune_wf = if prune then Some (Prune.wf_facts wfs) else None in
  let partial =
    solve_unit ~incremental ?prune_wf ~base:KMap.empty ~init:initial subs
  in
  partial.pr_stats.alpha_collapsed <- !collapsed;
  {
    solution = KMap.map (List.map fst) partial.pr_solution;
    failures = List.map snd partial.pr_failures;
    solver_stats = partial.pr_stats;
    dead_quals = dead_qualifiers ~initial ~final:partial.pr_solution;
  }

(* -- Applying solutions ----------------------------------------------------------------- *)

(** Replace every κ in [t] by (the conjunction of) its solution. *)
let rec apply_solution (sol : Pred.t list KMap.t) (t : Rtype.t) : Rtype.t =
  let refinement (r : Rtype.refinement) : Rtype.refinement =
    let solved =
      List.concat_map
        (fun (k, theta) ->
          let ps = match KMap.find_opt k sol with Some ps -> ps | None -> [] in
          List.map (Pred.subst theta) ps)
        r.Rtype.kvars
    in
    Rtype.known (Pred.conj (r.Rtype.preds :: solved))
  in
  match t with
  | Rtype.Base (b, r) -> Rtype.Base (b, refinement r)
  | Rtype.Fun (x, t1, t2) ->
      Rtype.Fun (x, apply_solution sol t1, apply_solution sol t2)
  | Rtype.Tuple ts -> Rtype.Tuple (List.map (apply_solution sol) ts)
  | Rtype.List (t, r) -> Rtype.List (apply_solution sol t, refinement r)
  | Rtype.Array (t, r) -> Rtype.Array (apply_solution sol t, refinement r)
  | Rtype.Data (d, r) -> Rtype.Data (d, refinement r)
  | Rtype.Tyvar (k, r) -> Rtype.Tyvar (k, refinement r)
