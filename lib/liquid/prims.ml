(** Refined signatures of the NanoML primitives.

    These dependent signatures are where the paper's array-bounds safety
    policy lives:

    - [Array.make] records the length of the new array ([len ν = n]);
    - [Array.length] reflects [len] into the program ([ν = len a]);
    - [Array.get]/[Array.set] demand in-bounds indices
      ([0 <= i < len a]) — each call site becomes a subtyping constraint
      whose failure is reported as a potential bounds violation.

    Polymorphic primitives use {!Rtype.Tyvar} for their element type; each
    call site instantiates it with a fresh template, which is how element
    invariants flow through containers (the paper's key use of
    polymorphism). *)

open Liquid_common
open Liquid_logic
open Rtype

let v = Ident.vv
let vt s = Term.var v s
let ivar x = Term.var (Ident.of_string x) Sort.Int
let ovar x = Term.var (Ident.of_string x) Sort.Obj
let len t = Measure.app "len" t
let llen t = Measure.app "llen" t

let known p = Rtype.known p
let int_r p = Base (Bint, known p)
let int_top = Base (Bint, trivial)
let unit_t = Base (Bunit, trivial)
let alpha = Tyvar (0, trivial)

let fn x t1 t2 = Fun (Ident.of_string x, t1, t2)

(** [0 <= ν && ν < len a] — the bounds-safe index type. *)
let in_bounds_of a =
  Pred.conj
    [ Pred.le (Term.int 0) (vt Sort.Int); Pred.lt (vt Sort.Int) (len (ovar a)) ]

let signatures : (string * Rtype.t) list =
  [
    ( "Array.make",
      (* n:{0 <= ν} -> x:α -> {ν:α array | len ν = n} *)
      fn "n"
        (int_r (Pred.le (Term.int 0) (vt Sort.Int)))
        (fn "x" alpha
           (Array (alpha, known (Pred.eq (len (vt Sort.Obj)) (ivar "n"))))) );
    ( "Array.length",
      (* a:α array -> {ν:int | ν = len a && 0 <= ν} *)
      fn "a"
        (Array (alpha, trivial))
        (int_r
           (Pred.conj
              [
                Pred.eq (vt Sort.Int) (len (ovar "a"));
                Pred.le (Term.int 0) (vt Sort.Int);
              ])) );
    ( "Array.get",
      (* a:α array -> i:{0 <= ν < len a} -> α *)
      fn "a" (Array (alpha, trivial)) (fn "i" (int_r (in_bounds_of "a")) alpha)
    );
    ( "Array.set",
      (* a:α array -> i:{0 <= ν < len a} -> x:α -> unit *)
      fn "a"
        (Array (alpha, trivial))
        (fn "i" (int_r (in_bounds_of "a")) (fn "x" alpha unit_t)) );
    ( "min",
      fn "x" int_top
        (fn "y" int_top
           (int_r
              (Pred.conj
                 [
                   Pred.le (vt Sort.Int) (ivar "x");
                   Pred.le (vt Sort.Int) (ivar "y");
                   Pred.disj
                     [
                       Pred.eq (vt Sort.Int) (ivar "x");
                       Pred.eq (vt Sort.Int) (ivar "y");
                     ];
                 ]))) );
    ( "max",
      fn "x" int_top
        (fn "y" int_top
           (int_r
              (Pred.conj
                 [
                   Pred.ge (vt Sort.Int) (ivar "x");
                   Pred.ge (vt Sort.Int) (ivar "y");
                   Pred.disj
                     [
                       Pred.eq (vt Sort.Int) (ivar "x");
                       Pred.eq (vt Sort.Int) (ivar "y");
                     ];
                 ]))) );
    ( "abs",
      fn "x" int_top
        (int_r
           (Pred.conj
              [
                Pred.ge (vt Sort.Int) (Term.int 0);
                Pred.disj
                  [
                    Pred.eq (vt Sort.Int) (ivar "x");
                    Pred.eq (vt Sort.Int) (Term.neg (ivar "x"));
                  ];
              ])) );
    ("print_int", fn "x" int_top unit_t);
    ("print_newline", fn "u" unit_t unit_t);
    ( "List.length",
      (* l:α list -> {ν:int | ν = llen l && 0 <= ν} *)
      fn "l"
        (List (alpha, trivial))
        (int_r
           (Pred.conj
              [
                Pred.eq (vt Sort.Int) (llen (ovar "l"));
                Pred.le (Term.int 0) (vt Sort.Int);
              ])) );
  ]

let table : (Ident.t, Rtype.t) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, rt) -> Hashtbl.add tbl (Ident.of_string name) rt)
    signatures;
  tbl

let lookup (x : Ident.t) : Rtype.t option = Hashtbl.find_opt table x

(** Human-readable reason for the refined argument of a primitive, used to
    label constraint origins (and hence error messages). *)
let arg_reason (x : Ident.t) : string option =
  match Ident.to_string x with
  | "Array.get" | "Array.set" -> Some "array index may be out of bounds"
  | "Array.make" -> Some "array size may be negative"
  | _ -> None
