(** Elaboration of surface [measure] declarations into the measure table
    ({!Liquid_logic.Measure}).

    Assumes the declaration unit has passed {!Liquid_lang.Declcheck} —
    every equation is total, arity-correct, and structurally recursive —
    so elaboration is a straight syntax-directed translation: equation
    binders become argument positions, [max]/[min] become the table's
    case-split connectives, and measure applications become [Capp]
    references resolved at axiom-instantiation time. *)

open Liquid_logic
open Liquid_lang

let body_of_mterm (argnames : string option list) (t : Ast.mterm) :
    Measure.body =
  let index x =
    let rec go i = function
      | [] -> invalid_arg ("Measures.load: unbound measure variable " ^ x)
      | Some y :: _ when String.equal x y -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 argnames
  in
  let rec go (t : Ast.mterm) : Measure.body =
    match t with
    | Ast.Mint n -> Measure.Cint n
    | Ast.Mvar (x, _) -> Measure.Carg (index x)
    | Ast.Mcall ("max", _, [ a; b ]) -> Measure.Cmax (go a, go b)
    | Ast.Mcall ("min", _, [ a; b ]) -> Measure.Cmin (go a, go b)
    | Ast.Mcall (f, _, [ Ast.Mvar (x, _) ]) -> Measure.Capp (f, index x)
    | Ast.Mcall (f, _, _) ->
        invalid_arg ("Measures.load: non-structural application of " ^ f)
    | Ast.Mneg a -> Measure.Cneg (go a)
    | Ast.Madd (a, b) -> Measure.Cadd (go a, go b)
    | Ast.Msub (a, b) -> Measure.Csub (go a, go b)
    | Ast.Mmul (a, b) -> Measure.Cmul (go a, go b)
  in
  go t

let eqn_of_meqn (eq : Ast.meqn) : Measure.eqn =
  let argnames = List.map fst eq.Ast.eq_args in
  {
    Measure.ctor = eq.Ast.eq_ctor;
    arity = List.length eq.Ast.eq_args;
    body = body_of_mterm argnames eq.Ast.eq_body;
  }

(** Reset the table to the built-ins and register every declared
    measure, in source order (registration order is fact order
    everywhere downstream, so this is what keeps runs deterministic).
    @raise Invalid_argument on declarations that did not pass
    {!Liquid_lang.Declcheck}. *)
let load (decls : Ast.decls) : unit =
  Measure.reset ();
  List.iter
    (fun (m : Ast.measure_decl) ->
      ignore
        (Measure.register ~name:m.Ast.m_name ~tycon:m.Ast.m_tycon
           (List.map eqn_of_meqn m.Ast.m_eqns)))
    decls.Ast.measures

(** Stable digest of the declaration unit's measure and type content,
    for cache keys: any change to a constructor layout or measure body
    changes the digest.  [""] for declaration-free programs, so their
    fingerprints are unchanged from earlier versions. *)
let fingerprint (decls : Ast.decls) : string =
  if decls.Ast.types = [] && decls.Ast.measures = [] then ""
  else begin
    let buf = Buffer.create 256 in
    List.iter
      (fun (td : Ast.tydecl) ->
        Buffer.add_string buf ("type " ^ td.Ast.t_name);
        List.iter
          (fun (c : Ast.ctor_decl) ->
            Buffer.add_string buf ("|" ^ c.Ast.c_name);
            List.iter
              (fun (a : Ast.tyexpr) ->
                Buffer.add_string buf (" " ^ a.Ast.ty_name))
              c.Ast.c_args)
          td.Ast.t_ctors;
        Buffer.add_char buf '\n')
      decls.Ast.types;
    List.iter
      (fun (m : Ast.measure_decl) ->
        Buffer.add_string buf
          (Fmt.str "measure %s : %s =@%a\n" m.Ast.m_name m.Ast.m_tycon
             (Fmt.list ~sep:(Fmt.any ";") Measure.pp_eqn)
             (List.map eqn_of_meqn m.Ast.m_eqns)))
      decls.Ast.measures;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  end
