(** Fresh-name generation.

    All compiler-introduced names share a single global counter so that a
    fresh name can never collide with another fresh name.  [reset] exists
    solely so that unit tests and the benchmark harness produce
    deterministic output run after run. *)

let counter = ref 0

let reset () = counter := 0

let next () =
  incr counter;
  !counter

(** [fresh base] returns an identifier ["%base.N"].  The ['%'] prefix marks
    the name as internal (see {!Ident.is_internal}); source identifiers can
    never start with ['%']. *)
let fresh base =
  let n = next () in
  Ident.of_string (Printf.sprintf "%%%s.%d" base n)

(** [rename x] returns a fresh copy of [x] that keeps the original name as
    a readable prefix, e.g. [rename "lo"] gives ["%lo.7"]. *)
let rename x = fresh (Ident.to_string x)

(* Binder names introduced while building refinement templates
   (constraint-generation-time instantiation).  These live in their own
   counter, reset alongside κ and sub_id numbering at the start of
   constraint generation: the main counter's position at that point
   depends on how many temporaries the earlier phases created, so
   names drawn from it would change whenever an edit anywhere in the
   program adds or removes a temporary — defeating content-addressed
   caching of untouched constraint partitions.  The tick format
   ("%base'N") keeps the namespace disjoint from [fresh]'s "%base.N",
   so a reset can never collide with a name an earlier phase made. *)
let inst_counter = ref 0

let reset_inst () = inst_counter := 0

let fresh_inst base =
  incr inst_counter;
  Ident.of_string (Printf.sprintf "%%%s'%d" base !inst_counter)
