(** Source locations: a span of positions within a named input. *)

type pos = { line : int; col : int }

type t = { file : string; start_pos : pos; end_pos : pos }

let dummy_pos = { line = 0; col = 0 }

let dummy = { file = "<none>"; start_pos = dummy_pos; end_pos = dummy_pos }

let is_dummy t = t.file = "<none>"

let make ~file ~start_pos ~end_pos = { file; start_pos; end_pos }

let of_lexing (p1 : Lexing.position) (p2 : Lexing.position) =
  let cvt (p : Lexing.position) =
    { line = p.pos_lnum; col = p.pos_cnum - p.pos_bol }
  in
  { file = p1.pos_fname; start_pos = cvt p1; end_pos = cvt p2 }

(** Smallest span covering both locations (assumes same file). *)
let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else
    let le p q = p.line < q.line || (p.line = q.line && p.col <= q.col) in
    {
      file = a.file;
      start_pos = (if le a.start_pos b.start_pos then a.start_pos else b.start_pos);
      end_pos = (if le a.end_pos b.end_pos then b.end_pos else a.end_pos);
    }

(** [contains outer inner]: does [outer] span all of [inner]?  False when
    either location is dummy or the files differ. *)
let contains outer inner =
  (not (is_dummy outer))
  && (not (is_dummy inner))
  && outer.file = inner.file
  &&
  let le p q = p.line < q.line || (p.line = q.line && p.col <= q.col) in
  le outer.start_pos inner.start_pos && le inner.end_pos outer.end_pos

(** Total order: by file, then start position, then end position. *)
let compare a b =
  let pos_compare p q =
    match Int.compare p.line q.line with
    | 0 -> Int.compare p.col q.col
    | c -> c
  in
  match String.compare a.file b.file with
  | 0 -> (
      match pos_compare a.start_pos b.start_pos with
      | 0 -> pos_compare a.end_pos b.end_pos
      | c -> c)
  | c -> c

let pp ppf t =
  if is_dummy t then Fmt.string ppf "<unknown>"
  else
    Fmt.pf ppf "%s:%d.%d-%d.%d" t.file t.start_pos.line t.start_pos.col
      t.end_pos.line t.end_pos.col

let to_string t = Fmt.str "%a" pp t
