(** Fresh-name generation (single global counter). *)

(** Reset the counter.  Only for deterministic test/bench output. *)
val reset : unit -> unit

(** Next counter value. *)
val next : unit -> int

(** [fresh base] returns an internal identifier ["%base.N"] (see
    {!Ident.is_internal}). *)
val fresh : string -> Ident.t

(** [rename x] is a fresh internal copy of [x] keeping the original name
    as a readable prefix. *)
val rename : Ident.t -> Ident.t

(** Reset the instantiation counter; call alongside
    {!Rtype.reset_kvars} before generating a constraint system. *)
val reset_inst : unit -> unit

(** [fresh_inst base] is an internal identifier ["%base'N"] drawn from a
    separate counter for binders introduced during constraint
    generation (template and dependent-signature instantiation).  Its
    per-run reset keeps the names — which appear in constraint
    environments and pending substitutions — stable across runs of the
    same program, which content-addressed partition caching requires;
    the main counter's position varies with the temporary count of
    earlier phases. *)
val fresh_inst : string -> Ident.t
