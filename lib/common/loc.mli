(** Source locations: a span of positions within a named input. *)

type pos = { line : int; col : int }

type t = { file : string; start_pos : pos; end_pos : pos }

val dummy_pos : pos
val dummy : t
val is_dummy : t -> bool

val make : file:string -> start_pos:pos -> end_pos:pos -> t

(** Build a span from two lexer positions. *)
val of_lexing : Lexing.position -> Lexing.position -> t

(** Smallest span covering both locations (assumes the same file). *)
val merge : t -> t -> t

(** [contains outer inner]: does [outer] span all of [inner]?  False when
    either location is dummy or the files differ. *)
val contains : t -> t -> bool

(** Total order: by file, then start position, then end position. *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
