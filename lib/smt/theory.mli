(** Combined theory solver for QF-EUFLIA conjunctions: purification into
    {!Lia} constraints and {!Cc} assertions, with a bounded Nelson–Oppen
    equality exchange.  [Unknown] must be treated as "possibly
    satisfiable". *)

open Liquid_logic

type result = Sat | Unsat | Unknown

(** Total invocation count (for benchmarking). *)
val ncalls : int ref

(** Total literals processed across all calls (instrumentation; prices
    each check by the size of the conjunction it decides). *)
val nlits_total : int ref

(** A counterexample value: integer entities keep their magnitude,
    boolean-sorted entities render as booleans. *)
type value = Vint of int | Vbool of bool

(** A counterexample assignment: display label -> value. *)
type model = (string * value) list

val pp_value : Format.formatter -> value -> unit

(** Model of the last [Sat] answer (display labels). *)
val last_model : model ref

(** Model of the last [Sat] answer keyed by the entities' {e original}
    labels (alpha-renaming suffixes intact, internal names included).
    Display labels are lossy — distinct solver variables can collide on
    one — so callers that {e evaluate} predicates under a model read
    this one. *)
val last_model_raw : model ref

(** Display form of an entity label: [None] for internal ('%'-prefixed)
    names and non-measure application proxies; strips alpha-renaming
    [#N] suffixes and renders the value variable [VV] as [v]. *)
val clean_label : string -> string option

(** Decide the conjunction of the given signed atoms ([(p, false)]
    asserts the negation of [p]).  Non-atomic predicates are rejected
    with [Invalid_argument]. *)
val check_sat : (Pred.t * bool) list -> result
