(** Combined theory solver for QF-EUFLIA conjunctions: purification into
    {!Lia} constraints and {!Cc} assertions, with a bounded Nelson–Oppen
    equality exchange.  [Unknown] must be treated as "possibly
    satisfiable". *)

open Liquid_logic

type result = Sat | Unsat | Unknown

(** Total invocation count (for benchmarking). *)
val ncalls : int ref

(** A counterexample value: integer entities keep their magnitude,
    boolean-sorted entities render as booleans. *)
type value = Vint of int | Vbool of bool

(** A counterexample assignment: display label -> value. *)
type model = (string * value) list

val pp_value : Format.formatter -> value -> unit

(** Model of the last [Sat] answer. *)
val last_model : model ref

(** Display form of an entity label: [None] for internal ('%'-prefixed)
    names and non-measure application proxies; strips alpha-renaming
    [#N] suffixes and renders the value variable [VV] as [v]. *)
val clean_label : string -> string option

(** Decide the conjunction of the given signed atoms ([(p, false)]
    asserts the negation of [p]).  Non-atomic predicates are rejected
    with [Invalid_argument]. *)
val check_sat : (Pred.t * bool) list -> result
