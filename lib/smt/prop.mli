(** Propositional abstraction: Tseitin CNF over canonicalized theory
    atoms.  Atoms occupy variable ids [0 .. natoms-1]; Tseitin definition
    variables follow. *)

open Liquid_logic

(** [v+1] (positive) or [-(v+1)] (negative) for variable [v]. *)
type lit = int

type clause = lit list

type cnf = {
  clauses : clause list;
  natoms : int;
  atoms : Pred.t array; (* atom of each theory variable *)
  root : lit; (* literal equivalent to the whole formula *)
}

(** Canonicalize an atom ([Gt]/[Ge] swapped, [Ne] as negated oriented
    [Eq]); returns the canonical atom and the polarity.  Memoized per
    interned atom. *)
val canon : Pred.t -> Pred.t * bool

(** Orientation-normal form of a predicate: every atom canonicalized
    (negated verbatim on polarity flip), connective structure untouched.
    Predicates with equal normal forms are logically equivalent, and the
    property is stable under substitution.  A dedup {e key} only — never
    print or solve the result.  Memoized. *)
val normalize : Pred.t -> Pred.t

val of_pred : Pred.t -> cnf

(** {1 Incremental encoding}

    The mutable encoder state behind {!of_pred}, exposed so an
    incremental assertion context ({!Solver}) can keep one builder alive
    across asserts: the atom table and clause list grow monotonically,
    which makes push/pop a matter of truncating back to saved marks. *)

type builder = {
  mutable next : int; (* next fresh propositional variable *)
  atom_tbl : int Pred.Tbl.t; (* canonical atom -> variable *)
  mutable atom_list : Pred.t list; (* interned atoms, reversed *)
  mutable cls : clause list; (* definitional + asserted clauses *)
}

val new_builder : unit -> builder

(** Tseitin-encode [p] into the builder, returning a literal equivalent
    to it (definitional clauses are appended to the builder).  Unlike
    {!of_pred}, atoms are interned on first sight, so atom and Tseitin
    variables interleave — project models through the builder's
    [atom_tbl], not a [0..natoms-1] prefix. *)
val encode : builder -> Pred.t -> lit

(** Intern every (canonical) atom of [p] without encoding it. *)
val intern_atoms : builder -> Pred.t -> unit
