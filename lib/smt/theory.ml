(** Combined theory solver for QF-EUFLIA conjunctions.

    Given a conjunction of signed atoms (produced by the DPLL layer), this
    module decides satisfiability modulo the combination of:

    - linear integer arithmetic ({!Lia} over {!Simplex}), and
    - equality with uninterpreted functions ({!Cc}),

    using a purification pass and a bounded Nelson–Oppen-style equality
    exchange:

    - every program variable becomes an {e entity} (a small integer id);
    - uninterpreted applications get entity {e proxies} linked to their CC
      node, so congruence-derived equalities transfer to arithmetic;
    - compound arithmetic terms appearing under uninterpreted symbols get
      proxy entities with defining equations;
    - CC-derived equalities between integer entities are asserted in LIA;
      LIA-implied equalities between candidate entity pairs (arguments of
      same-symbol applications) are asserted back into CC, up to a fixed
      budget.

    Any "unknown" outcome (overflow, branch-and-bound budget, exchange
    budget) is reported as {!Unknown}; the validity checker treats it as
    "possibly satisfiable", which is sound. *)

open Liquid_common
open Liquid_logic

type result = Sat | Unsat | Unknown

let ncalls = ref 0

(* Literals processed across all calls: prices each check by the size
   of the conjunction it decides (congruence closure and constraint
   translation are both linear-ish in it), for the deterministic cost
   metering in {!Solver}. *)
let nlits_total = ref 0

type state = {
  cc : Cc.t;
  mutable nents : int;
  ent_of_ident : (Ident.t, int) Hashtbl.t;
  mutable ent_sort : Sort.t list; (* reversed: id [nents-1-i] has sort [nth i] *)
  app_proxy : (Cc.node, int) Hashtbl.t; (* app node -> entity id *)
  linexp_proxy : (string, int) Hashtbl.t; (* canonical linexp -> entity id *)
  mutable defs : Lia.cons list;
  mutable arith : Lia.cons list;
  mutable diseqs : Linexp.t list; (* d <> 0 constraints, branched at the end *)
  (* entity ids that appear as arguments of applications (candidates for
     LIA -> CC equality propagation) *)
  mutable shared : int list;
  labels : (int, string) Hashtbl.t; (* entity id -> display label *)
}

let create () =
  {
    cc = Cc.create ();
    nents = 0;
    ent_of_ident = Hashtbl.create 16;
    ent_sort = [];
    app_proxy = Hashtbl.create 16;
    linexp_proxy = Hashtbl.create 16;
    defs = [];
    arith = [];
    diseqs = [];
    shared = [];
    labels = Hashtbl.create 16;
  }

let fresh_ent st sort =
  let id = st.nents in
  st.nents <- id + 1;
  st.ent_sort <- sort :: st.ent_sort;
  id

let sort_of_ent st id = List.nth st.ent_sort (st.nents - 1 - id)

let ent_of_var st x sort =
  match Hashtbl.find_opt st.ent_of_ident x with
  | Some id -> id
  | None ->
      let id = fresh_ent st sort in
      Hashtbl.add st.ent_of_ident x id;
      Hashtbl.replace st.labels id (Ident.to_string x);
      id

(* -- Purification ---------------------------------------------------- *)

let linexp_key (le : Linexp.t) =
  Fmt.str "%a" (Linexp.pp (fun ppf v -> Fmt.int ppf v)) le

(** CC node for a linear expression: plain entities and constants map
    directly; anything compound gets a defined proxy entity. *)
let rec node_of_linexp st (le : Linexp.t) : Cc.node =
  match Linexp.choose_var le with
  | None -> Cc.const st.cc (Rat.floor (Linexp.constant le))
  | Some (v, c)
    when Rat.equal c Rat.one
         && Rat.is_zero (Linexp.constant le)
         && Linexp.compare le (Linexp.var v) = 0 ->
      Cc.var st.cc v
  | Some _ -> (
      let key = linexp_key le in
      match Hashtbl.find_opt st.linexp_proxy key with
      | Some p -> Cc.var st.cc p
      | None ->
          let p = fresh_ent st Sort.Int in
          Hashtbl.add st.linexp_proxy key p;
          (* definition: p - le = 0 *)
          st.defs <-
            { Lia.exp = Linexp.sub (Linexp.var p) le; op = Lia.Eq; rhs = Rat.zero }
            :: st.defs;
          Cc.var st.cc p)

(** Arithmetic view of a term.  Uninterpreted applications are replaced by
    proxy entities; products linearize when either operand is constant and
    fall back to the uninterpreted [mul] symbol otherwise. *)
and linexp_of_term st (t : Term.t) : Linexp.t =
  match Term.view t with
  | Term.Int n -> Linexp.const (Rat.of_int n)
  | Term.Var (x, s) -> Linexp.var (ent_of_var st x s)
  | Term.App (f, args) -> Linexp.var (proxy_of_app st f args)
  | Term.Neg t -> Linexp.neg (linexp_of_term st t)
  | Term.Add (a, b) -> Linexp.add (linexp_of_term st a) (linexp_of_term st b)
  | Term.Sub (a, b) -> Linexp.sub (linexp_of_term st a) (linexp_of_term st b)
  | Term.Mul (a, b) ->
      let la = linexp_of_term st a and lb = linexp_of_term st b in
      if Linexp.is_const la then Linexp.scale (Linexp.constant la) lb
      else if Linexp.is_const lb then Linexp.scale (Linexp.constant lb) la
      else Linexp.var (proxy_of_app st Symbol.mul [ a; b ])

(** CC node for an arbitrary term. *)
and node_of_term st (t : Term.t) : Cc.node =
  match Term.view t with
  | Term.Var (x, s) -> Cc.var st.cc (ent_of_var st x s)
  | Term.Int n -> Cc.const st.cc n
  | Term.App (f, args) ->
      let node = app_node st f args in
      node
  | Term.Neg _ | Term.Add _ | Term.Sub _ | Term.Mul _ ->
      node_of_linexp st (linexp_of_term st t)

and app_node st f args =
  let arg_nodes = List.map (node_of_term st) args in
  (* Record argument entities as shared (candidates for propagation). *)
  List.iter
    (fun n ->
      match Cc.expr_of st.cc n with
      | Cc.Evar id when Sort.equal (sort_of_ent st id) Sort.Int ->
          st.shared <- id :: st.shared
      | _ -> ())
    arg_nodes;
  Cc.app st.cc f arg_nodes

(** Entity proxy standing for an application in arithmetic positions.
    The proxy's CC node is merged with the application node so that
    congruence-derived equalities reach the arithmetic solver. *)
and proxy_of_app st f args =
  let node = app_node st f args in
  match Hashtbl.find_opt st.app_proxy node with
  | Some p -> p
  | None ->
      let p = fresh_ent st (Symbol.result_sort f) in
      Hashtbl.add st.app_proxy node p;
      Hashtbl.replace st.labels p (Term.to_string (Term.make (Term.App (f, args))));
      st.shared <- p :: st.shared;
      Cc.assert_eq st.cc (Cc.var st.cc p) node;
      p

(* -- Literal assertion ------------------------------------------------ *)

(** Assert one signed atom.  [polarity = false] asserts the negation. *)
let assert_atom st (p : Pred.t) (polarity : bool) =
  let open Pred in
  match view p with
  | Bvar _ | True | False -> () (* propositional; no theory content *)
  | Atom (t1, rel, t2) -> (
      let rel =
        if polarity then rel
        else
          match rel with
          | Eq -> Ne
          | Ne -> Eq
          | Lt -> Ge
          | Le -> Gt
          | Gt -> Le
          | Ge -> Lt
      in
      let s1 = Term.sort t1 in
      let is_obj = Sort.equal s1 Sort.Obj in
      match rel with
      | Eq ->
          Cc.assert_eq st.cc (node_of_term st t1) (node_of_term st t2);
          if not is_obj then
            st.arith <-
              {
                Lia.exp = Linexp.sub (linexp_of_term st t1) (linexp_of_term st t2);
                op = Lia.Eq;
                rhs = Rat.zero;
              }
              :: st.arith
      | Ne ->
          Cc.assert_ne st.cc (node_of_term st t1) (node_of_term st t2);
          if not is_obj then
            st.diseqs <-
              Linexp.sub (linexp_of_term st t1) (linexp_of_term st t2)
              :: st.diseqs
      | Lt | Le | Gt | Ge ->
          let le1 = linexp_of_term st t1 and le2 = linexp_of_term st t2 in
          let exp, op =
            match rel with
            | Lt -> (Linexp.sub le1 le2, Lia.Lt)
            | Le -> (Linexp.sub le1 le2, Lia.Le)
            | Gt -> (Linexp.sub le2 le1, Lia.Lt)
            | Ge -> (Linexp.sub le2 le1, Lia.Le)
            | _ -> assert false
          in
          st.arith <- { Lia.exp; op; rhs = Rat.zero } :: st.arith)
  | Not _ | And _ | Or _ | Imp _ | Iff _ ->
      invalid_arg "Theory.assert_atom: non-atomic predicate"

(* -- Satisfiability check --------------------------------------------- *)

(** LIA check with integer disequalities handled by case-splitting. *)
let rec lia_with_diseqs ~nvars cons diseqs : Lia.result =
  match diseqs with
  | [] -> Lia.check ~nvars cons
  | d :: rest -> (
      let lo = { Lia.exp = d; op = Lia.Lt; rhs = Rat.zero } in
      let hi = { Lia.exp = Linexp.neg d; op = Lia.Lt; rhs = Rat.zero } in
      match lia_with_diseqs ~nvars (lo :: cons) rest with
      | Lia.Sat m -> Lia.Sat m
      | Lia.Unsat -> lia_with_diseqs ~nvars (hi :: cons) rest
      | Lia.Unknown -> (
          match lia_with_diseqs ~nvars (hi :: cons) rest with
          | Lia.Sat m -> Lia.Sat m
          | _ -> Lia.Unknown))

(** CC-derived equalities between integer entities, as LIA constraints. *)
let cc_equalities st =
  (* Group entity nodes by CC representative. *)
  let by_repr : (int, (int option * int list) ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (n, r) ->
      let cell =
        match Hashtbl.find_opt by_repr r with
        | Some c -> c
        | None ->
            let c = ref (None, []) in
            Hashtbl.add by_repr r c;
            c
      in
      match Cc.expr_of st.cc n with
      | Cc.Evar id when Sort.equal (sort_of_ent st id) Sort.Int ->
          let k, es = !cell in
          cell := (k, id :: es)
      | Cc.Econst k ->
          let _, es = !cell in
          cell := (Some k, es)
      | _ -> ())
    (Cc.nodes_with_reprs st.cc);
  Hashtbl.fold
    (fun _ cell acc ->
      let konst, ents = !cell in
      let acc =
        match (konst, ents) with
        | Some k, e :: _ ->
            {
              Lia.exp = Linexp.var e;
              op = Lia.Eq;
              rhs = Rat.of_int k;
            }
            :: acc
        | _ -> acc
      in
      match ents with
      | [] | [ _ ] -> acc
      | e0 :: rest ->
          List.fold_left
            (fun acc e ->
              {
                Lia.exp = Linexp.sub (Linexp.var e0) (Linexp.var e);
                op = Lia.Eq;
                rhs = Rat.zero;
              }
              :: acc)
            acc rest)
    by_repr []

(** Maximum number of LIA queries spent discovering implied equalities for
    the LIA -> CC direction of the combination. *)
let propagation_budget = 64

(** Entity pairs whose equality would enable new congruences: integer
    entities appearing at the same argument position of two applications
    of the same symbol that are not yet known equal.  Testing arbitrary
    pairs would be sound but wastes LIA queries on pairs no congruence
    cares about. *)
let candidate_pairs st =
  let apps =
    Cc.fold_apps (fun acc node f args -> (node, f, args) :: acc) st.cc []
  in
  let int_ent n =
    match Cc.expr_of st.cc n with
    | Cc.Evar id when Sort.equal (sort_of_ent st id) Sort.Int -> Some id
    | _ -> None
  in
  let pairs = ref [] in
  let rec walk = function
    | [] -> ()
    | (n1, f1, args1) :: rest ->
        List.iter
          (fun (n2, f2, args2) ->
            if
              Symbol.equal f1 f2
              && List.length args1 = List.length args2
              && not (Cc.equal st.cc n1 n2)
            then
              List.iter2
                (fun a1 a2 ->
                  match (int_ent a1, int_ent a2) with
                  | Some u, Some v
                    when not (Cc.equal st.cc (Cc.var st.cc u) (Cc.var st.cc v))
                    ->
                      pairs := (u, v) :: !pairs
                  | _ -> ())
                args1 args2)
          rest;
        walk rest
  in
  walk apps;
  Listx.dedup_ordered
    ~compare:(fun (a, b) (c, d) ->
      match Int.compare a c with 0 -> Int.compare b d | n -> n)
    !pairs

(** A counterexample value: integers keep their magnitude, boolean-sorted
    entities render as booleans. *)
type value = Vint of int | Vbool of bool

(** A counterexample assignment: display label -> value, for the
    non-internal entities of the query. *)
type model = (string * value) list

let last_model : model ref = ref []

(** Display form of an entity/atom label: internal names ('%'-prefixed)
    are dropped, alpha-renaming suffixes ([#N]) are stripped, the value
    variable [VV] prints as [v], and non-measure applications (mul/div
    proxies) are rejected as counterexample noise. *)
let clean_label (label : string) : string option =
  if String.length label = 0 || label.[0] = '%' then None
  else begin
    (* strip alpha-renaming suffixes (#N) for display *)
    let buf = Buffer.create (String.length label) in
    let skip = ref false in
    String.iter
      (fun c ->
        if c = '#' then skip := true
        else if !skip && c >= '0' && c <= '9' then ()
        else begin
          skip := false;
          Buffer.add_char buf c
        end)
      label;
    let label = Buffer.contents buf in
    let label = if label = "VV" then "v" else label in
    (* keep variables and measure applications; drop other proxies
       (mul/div/mod terms are noise in a counterexample) *)
    let keep =
      match String.index_opt label '(' with
      | None -> true
      | Some i -> Symbol.is_measure_name (String.sub label 0 i)
    in
    if keep then Some label else None
  end

let pp_value ppf = function
  | Vint n -> Fmt.int ppf n
  | Vbool b -> Fmt.bool ppf b

(** Like {!last_model}, but keyed by the entities' {e original} labels
    (alpha-renaming suffixes intact, internal names and measure
    applications included verbatim).  Display models are lossy — two
    solver variables can collide on one display label — so callers that
    {e evaluate} predicates under a model (counterexample-guided
    elimination) read this one. *)
let last_model_raw : model ref = ref []

let extract_model_raw st (m : Rat.t array) : model =
  let out = ref [] in
  Hashtbl.iter
    (fun id label ->
      if id < Array.length m then
        match sort_of_ent st id with
        | Sort.Int -> out := (label, Vint (Rat.floor m.(id))) :: !out
        | Sort.Bool -> out := (label, Vbool (Rat.floor m.(id) <> 0)) :: !out
        | Sort.Obj -> ())
    st.labels;
  List.sort compare !out

let extract_model st (m : Rat.t array) : model =
  let out = ref [] in
  Hashtbl.iter
    (fun id label ->
      if id < Array.length m then
        let sort = sort_of_ent st id in
        let value =
          match sort with
          | Sort.Int -> Some (Vint (Rat.floor m.(id)))
          | Sort.Bool -> Some (Vbool (Rat.floor m.(id) <> 0))
          | Sort.Obj -> None
        in
        match (value, clean_label label) with
        | Some v, Some label -> out := (label, v) :: !out
        | _ -> ())
    st.labels;
  List.sort compare !out

let check_sat (lits : (Pred.t * bool) list) : result =
  incr ncalls;
  nlits_total := !nlits_total + List.length lits;
  let st = create () in
  try
    List.iter (fun (p, pol) -> assert_atom st p pol) lits;
    let rec loop rounds budget =
      if not (Cc.ok st.cc) then Unsat
      else
        let nvars = st.nents in
        let cons = st.defs @ st.arith @ cc_equalities st in
        match lia_with_diseqs ~nvars cons st.diseqs with
        | Lia.Unsat -> Unsat
        | Lia.Unknown -> Unknown
        | Lia.Sat m when rounds = 0 ->
            last_model := extract_model st m;
            last_model_raw := extract_model_raw st m;
            Sat
        | Lia.Sat _ ->
            (* LIA -> CC: discover implied equalities among shared pairs. *)
            let implied u v =
              let neq d =
                { Lia.exp = d; op = Lia.Lt; rhs = Rat.zero }
              in
              let d = Linexp.sub (Linexp.var u) (Linexp.var v) in
              Lia.check ~nvars (neq d :: cons) = Lia.Unsat
              && Lia.check ~nvars (neq (Linexp.neg d) :: cons) = Lia.Unsat
            in
            let budget = ref budget in
            let merged = ref false in
            List.iter
              (fun (u, v) ->
                if !budget > 0 then begin
                  budget := !budget - 2;
                  if implied u v then begin
                    Cc.assert_eq st.cc (Cc.var st.cc u) (Cc.var st.cc v);
                    merged := true
                  end
                end)
              (candidate_pairs st);
            if !merged then loop (rounds - 1) !budget
            else begin
              (match lia_with_diseqs ~nvars cons st.diseqs with
              | Lia.Sat m ->
                  last_model := extract_model st m;
                  last_model_raw := extract_model_raw st m
              | _ -> ());
              Sat
            end
    in
    loop 3 propagation_budget
  with Rat.Overflow -> Unknown
