(** General simplex for linear rational arithmetic (Dutertre & de Moura,
    CAV'06): decides conjunctions of [e <= c] / [e >= c] / [e = c] over
    the rationals and produces a model on success.  Terminating via
    Bland's rule. *)

type op = Le | Ge | Eq

type cons = { exp : Linexp.t; op : op; rhs : Rat.t }

val cons : Linexp.t -> op -> Rat.t -> cons

(** Pivots performed across all solves (instrumentation; the natural
    unit of simplex work). *)
val npivots : int ref

(** Decide a conjunction over variables [0 .. nvars-1].  May raise
    {!Rat.Overflow} on coefficient blowup (callers treat as unknown). *)
val solve : nvars:int -> cons list -> [ `Sat of Rat.t array | `Unsat ]
