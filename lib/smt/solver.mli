(** Public SMT interface: validity of quantifier-free EUFLIA implications,
    with hypothesis relevance pruning, result caching, and statistics.
    This is the module the liquid fixpoint talks to. *)

open Liquid_logic

type result = Valid | Invalid | Unknown

type stats = {
  mutable queries : int;
  mutable cache_hits : int;
  mutable sat_checks : int;
  mutable unknowns : int;
  mutable time : float;
}

val stats : stats
val reset_stats : unit -> unit
val pp_stats : Format.formatter -> unit -> unit

(** Result cache (on by default). *)

val cache_enabled : bool ref
val clear_cache : unit -> unit

(** Hypothesis relevance pruning (on by default): hypotheses sharing no
    variables, transitively, with the goal are dropped.  Sound: dropping
    hypotheses only makes implications harder. *)
val prune_enabled : bool ref

(** Counterexample values: integers keep their magnitude, boolean-sorted
    entities render as booleans (re-exported from the theory layer). *)
type cex_value = Theory.value = Vint of int | Vbool of bool

val pp_cex_value : Format.formatter -> cex_value -> unit

(** Counterexample (label -> value) for the most recent [Invalid]
    answer. *)
val last_cex : (string * cex_value) list ref

(** Counterexample of the most recent [Invalid] answer, under original
    (uncleaned) entity labels, suitable for strict predicate evaluation
    (no alpha-renaming collisions).  Restored on result-cache hits from
    the cached entry, so its value does not depend on cache temperature;
    empty means "no model available". *)
val last_cex_raw : (string * cex_value) list ref

(** Deterministic work units of the most recently decided query (theory
    literals processed + simplex pivots of its SAT check) — measured
    fresh, replayed on cache hits, zero for trivially decided queries.
    A reproducible cost proxy: unlike wall-clock time it is a pure
    function of the query, independent of machine load and cache
    temperature. *)
val last_work : int ref

(** Monotone sum of {!last_work} across all decided queries, for metering
    spans of solver work via before/after deltas. *)
val work_total : int ref

(** Clear all answer-bearing module-level state across the SMT stack —
    {!last_cex}, {!Dpll.last_model}, {!Theory.last_model}, and the
    per-run instrumentation counters of {!Dpll}/{!Theory}/{!Lia} — so a
    warm process (the verification daemon, or repeated in-process
    pipeline runs) can never report stale results from a previous run.
    Does {e not} clear the result cache ({!clear_cache}) or the
    cumulative {!stats}, which consumers read as before/after deltas. *)
val reset_run_state : unit -> unit

(** [check_valid ~kept hyps goal] decides [kept /\ hyps => goal].
    [kept] hypotheses (typically path guards) are exempt from pruning. *)
val check_valid : ?kept:Pred.t list -> Pred.t list -> Pred.t -> result

(** Like {!check_valid}, but also returns the indices of [hyps] retained
    by relevance pruning (ground hypotheses are always retained).  A
    verdict can only depend on retained hypotheses, which lets
    incremental callers skip re-checks when none of them changed. *)
val check_valid_idx :
  ?kept:Pred.t list -> Pred.t list -> Pred.t -> result * int list

(** A pruned implication query prepared once and decided later: the
    interned cache key plus [pruned_idx], the hypothesis indices retained
    by relevance pruning.  Lets a caller probe the cache and, on a miss,
    SAT-check the very same query without rebuilding it. *)
type prepared = private { query : Pred.t; pruned_idx : int list }

val prepare : ?kept:Pred.t list -> Pred.t list -> Pred.t -> prepared

(** Resolve a prepared query against the result cache without invoking
    the SAT solver ([None]: a fresh SAT check would be needed).  Counts
    as a query (and cache hit) only when it answers. *)
val probe_query : prepared -> result option

(** Decide a prepared query (cache first, then a SAT check). *)
val check_query : prepared -> result

(** Boolean view: [Unknown] counts as "not valid". *)
val is_valid : Pred.t list -> Pred.t -> bool

(** Satisfiability of a formula ([Unknown] counts as satisfiable). *)
val is_sat : Pred.t -> bool

(** {1 Incremental assertion context}

    A persistent solver context: facts are Tseitin-encoded once into a
    shared builder (atom table, clause list) and participate in every
    subsequent check; [push]/[pop] bracket speculative assertions by
    truncating the builder back to saved marks.  The qualifier-pruning
    pass asserts a κ's well-formedness facts once and then refutes /
    subsumption-checks each candidate against them incrementally. *)

type context

val create_context : unit -> context

(** Run [f] with a fresh context (convenience; the context carries no
    resources needing cleanup). *)
val with_context : (context -> 'a) -> 'a

(** Save a backtracking mark. *)
val ctx_push : context -> unit

(** Discard everything asserted since the matching {!ctx_push}.
    @raise Invalid_argument if no frame is open. *)
val ctx_pop : context -> unit

(** Assert a fact: encoded into the persistent builder, it constrains
    every subsequent check until popped. *)
val ctx_assert : context -> Pred.t -> unit

(** The currently-asserted facts, oldest first (for tests). *)
val ctx_assertions : context -> Pred.t list

(** Satisfiability of the asserted facts ([Unknown] conservatively
    counts as consistent). *)
val ctx_consistent : context -> bool

(** Whether the asserted facts entail [goal]: checks
    [facts /\ not goal] inside a private frame, leaving the context as
    it was.  Counts as a query in {!stats}. *)
val ctx_entails : context -> Pred.t -> result
