(** Lazy-SMT search: DPLL over the propositional abstraction with theory
    checks at propositional models, unsat-core-minimized blocking
    clauses, and a propagation-only fast path. *)

type result = Sat | Unsat | Unknown

(** Counterexample assignment (label -> value) of the last [Sat]
    answer.  Boolean program variables ([Bvar] atoms) are valued from
    the propositional assignment; arithmetic entities from the theory
    model. *)
val last_model : Theory.model ref

(** Same assignment under original (uncleaned) labels; see
    {!Theory.last_model_raw}. *)
val last_model_raw : Theory.model ref

(** Instrumentation counters (models enumerated across all queries, the
    maximum for a single query, the largest atom count seen). *)

val models_total : int ref
val max_models : int ref
val max_atoms : int ref

(** Satisfiability of a quantifier-free EUFLIA predicate. *)
val check_sat : Liquid_logic.Pred.t -> result

(** Satisfiability of a CNF with an explicit variable → theory-atom map
    ([None]: Tseitin definition variable).  This is {!check_sat} with
    the encoding step factored out, for callers that keep a persistent
    clause set (the incremental assertion context in {!Solver}).
    [nvars] is a lower bound on the variable count (literals present in
    the clauses raise it). *)
val check_sat_cnf :
  nvars:int ->
  atoms:Liquid_logic.Pred.t option array ->
  Prop.clause list ->
  result
