(** Lazy-SMT search: DPLL over the propositional abstraction with theory
    checks at propositional models, unsat-core-minimized blocking
    clauses, and a propagation-only fast path. *)

type result = Sat | Unsat | Unknown

(** Counterexample assignment (label -> value) of the last [Sat]
    answer.  Boolean program variables ([Bvar] atoms) are valued from
    the propositional assignment; arithmetic entities from the theory
    model. *)
val last_model : Theory.model ref

(** Instrumentation counters (models enumerated across all queries, the
    maximum for a single query, the largest atom count seen). *)

val models_total : int ref
val max_models : int ref
val max_atoms : int ref

(** Satisfiability of a quantifier-free EUFLIA predicate. *)
val check_sat : Liquid_logic.Pred.t -> result
