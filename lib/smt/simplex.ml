(** General simplex for linear rational arithmetic, after Dutertre & de
    Moura, "A Fast Linear-Arithmetic Solver for DPLL(T)" (CAV'06).

    This is the satisfiability core of the arithmetic theory solver: it
    decides conjunctions of constraints [e <= c], [e >= c], [e = c] over
    the rationals and produces a model on success.  The integer layer
    ({!Lia}) adds branch-and-bound on top.

    The implementation is the textbook one-shot variant: each constraint
    whose left-hand side is not a plain variable gets a slack variable
    [s = e]; constraints then become bounds on variables, and a pivoting
    loop repairs bound violations of basic variables.  Bland's rule
    (always choose the smallest eligible index) guarantees termination. *)

type op = Le | Ge | Eq

type cons = { exp : Linexp.t; op : op; rhs : Rat.t }

let cons exp op rhs = { exp; op; rhs }

exception Unsat

type t = {
  mutable nvars : int;
  mutable lower : Rat.t option array;
  mutable upper : Rat.t option array;
  mutable beta : Rat.t array;
  mutable basic : bool array;
  (* [rows.(i)] is meaningful iff [basic.(i)]; it expresses variable [i] as a
     linear form over nonbasic variables (no constant term). *)
  mutable rows : Linexp.t array;
}

let create nvars =
  {
    nvars;
    lower = Array.make (max nvars 1) None;
    upper = Array.make (max nvars 1) None;
    beta = Array.make (max nvars 1) Rat.zero;
    basic = Array.make (max nvars 1) false;
    rows = Array.make (max nvars 1) Linexp.zero;
  }

let grow t n =
  let cap = Array.length t.lower in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let extend a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    t.lower <- extend t.lower None;
    t.upper <- extend t.upper None;
    t.beta <- extend t.beta Rat.zero;
    t.basic <- extend t.basic false;
    t.rows <- extend t.rows Linexp.zero
  end

let fresh_var t =
  let v = t.nvars in
  grow t (v + 1);
  t.nvars <- v + 1;
  v

let set_lower t v c =
  match t.lower.(v) with
  | Some l when Rat.le c l -> ()
  | _ ->
      (match t.upper.(v) with Some u when Rat.lt u c -> raise Unsat | _ -> ());
      t.lower.(v) <- Some c

let set_upper t v c =
  match t.upper.(v) with
  | Some u when Rat.le u c -> ()
  | _ ->
      (match t.lower.(v) with Some l when Rat.lt c l -> raise Unsat | _ -> ());
      t.upper.(v) <- Some c

(* β update helpers ------------------------------------------------- *)

let recompute_basic t =
  for v = 0 to t.nvars - 1 do
    if t.basic.(v) then
      t.beta.(v) <- Linexp.eval (fun u -> t.beta.(u)) t.rows.(v)
  done

(* Pivots performed across all solves: the natural unit of simplex
   work, counted for the deterministic cost metering in {!Solver}. *)
let npivots = ref 0

(** [pivot t xi xj] makes [xj] basic in place of [xi].  [xi] must be basic
    and [xj] nonbasic with a non-zero coefficient in [xi]'s row. *)
let pivot t xi xj =
  incr npivots;
  let row_i = t.rows.(xi) in
  let aij, rest = Linexp.remove xj row_i in
  assert (not (Rat.is_zero aij));
  (* xi = aij*xj + rest   ==>   xj = (xi - rest) / aij *)
  let inv = Rat.inv aij in
  let row_j =
    Linexp.add (Linexp.var ~coeff:inv xi) (Linexp.scale (Rat.neg inv) rest)
  in
  t.basic.(xi) <- false;
  t.rows.(xi) <- Linexp.zero;
  t.basic.(xj) <- true;
  t.rows.(xj) <- row_j;
  (* Substitute xj's new definition into every other row. *)
  for k = 0 to t.nvars - 1 do
    if t.basic.(k) && k <> xj then begin
      let akj, restk = Linexp.remove xj t.rows.(k) in
      if not (Rat.is_zero akj) then
        t.rows.(k) <- Linexp.add restk (Linexp.scale akj row_j)
    end
  done

(** Make the (violated) basic variable [xi] take value [v] by pivoting it
    against a suitable nonbasic variable.  Returns [false] if no pivot is
    possible, i.e. the system is infeasible. *)
let repair t xi v =
  let row = t.rows.(xi) in
  let candidate =
    (* Bland's rule: smallest eligible nonbasic index. *)
    let increase = Rat.lt t.beta.(xi) v in
    let can_increase xj =
      match t.upper.(xj) with Some u -> Rat.lt t.beta.(xj) u | None -> true
    in
    let can_decrease xj =
      match t.lower.(xj) with Some l -> Rat.lt l t.beta.(xj) | None -> true
    in
    let best = ref None in
    Linexp.iter
      (fun xj a ->
        let eligible =
          if increase then
            (Rat.sign a > 0 && can_increase xj)
            || (Rat.sign a < 0 && can_decrease xj)
          else
            (Rat.sign a > 0 && can_decrease xj)
            || (Rat.sign a < 0 && can_increase xj)
        in
        if eligible then
          match !best with
          | Some (b, _) when b <= xj -> ()
          | _ -> best := Some (xj, a))
      row;
    !best
  in
  match candidate with
  | None -> false
  | Some (xj, aij) ->
      let theta = Rat.div (Rat.sub v t.beta.(xi)) aij in
      t.beta.(xi) <- v;
      t.beta.(xj) <- Rat.add t.beta.(xj) theta;
      pivot t xi xj;
      (* Update the values of all (other) basic variables. *)
      for k = 0 to t.nvars - 1 do
        if t.basic.(k) && k <> xj then
          t.beta.(k) <- Linexp.eval (fun u -> t.beta.(u)) t.rows.(k)
      done;
      true

let check_loop t =
  let continue_ = ref true in
  let sat = ref true in
  while !continue_ do
    (* Find the smallest basic variable violating one of its bounds. *)
    let viol = ref None in
    (try
       for v = 0 to t.nvars - 1 do
         if t.basic.(v) then begin
           (match t.lower.(v) with
           | Some l when Rat.lt t.beta.(v) l ->
               viol := Some (v, l);
               raise Exit
           | _ -> ());
           match t.upper.(v) with
           | Some u when Rat.lt u t.beta.(v) ->
               viol := Some (v, u);
               raise Exit
           | _ -> ()
         end
       done
     with Exit -> ());
    match !viol with
    | None -> continue_ := false
    | Some (xi, target) ->
        if not (repair t xi target) then begin
          sat := false;
          continue_ := false
        end
  done;
  !sat

(** Decide a conjunction of constraints over variables [0 .. nvars-1].
    On success returns a model assigning a rational to each variable. *)
let solve ~nvars (cs : cons list) : [ `Sat of Rat.t array | `Unsat ] =
  let t = create nvars in
  try
    (* Install each constraint as a bound, introducing slacks as needed. *)
    List.iter
      (fun { exp; op; rhs } ->
        let rhs = Rat.sub rhs (Linexp.constant exp) in
        let exp = Linexp.sub exp (Linexp.const (Linexp.constant exp)) in
        let v =
          match Linexp.choose_var exp with
          | None ->
              (* Constant constraint: check immediately. *)
              let ok =
                match op with
                | Le -> Rat.le Rat.zero rhs
                | Ge -> Rat.le rhs Rat.zero
                | Eq -> Rat.is_zero rhs
              in
              if not ok then raise Unsat;
              -1
          | Some (v0, c0) ->
              if Rat.equal c0 Rat.one && Linexp.compare exp (Linexp.var v0) = 0
              then v0
              else begin
                let s = fresh_var t in
                t.basic.(s) <- true;
                t.rows.(s) <- exp;
                s
              end
        in
        if v >= 0 then begin
          (match op with
          | Le -> set_upper t v rhs
          | Ge -> set_lower t v rhs
          | Eq ->
              set_lower t v rhs;
              set_upper t v rhs)
        end)
      cs;
    (* Initialize nonbasic values within their bounds. *)
    for v = 0 to t.nvars - 1 do
      if not t.basic.(v) then
        t.beta.(v) <-
          (match (t.lower.(v), t.upper.(v)) with
          | Some l, _ -> l
          | None, Some u -> u
          | None, None -> Rat.zero)
    done;
    recompute_basic t;
    if check_loop t then begin
      let model = Array.make nvars Rat.zero in
      for v = 0 to nvars - 1 do
        model.(v) <- t.beta.(v)
      done;
      `Sat model
    end
    else `Unsat
  with Unsat -> `Unsat
