(** Public SMT interface: validity of quantifier-free EUFLIA implications.

    This is the module the liquid-type fixpoint talks to.  A query asks
    whether [hyps |- goal] is valid, i.e. whether [And hyps /\ Not goal]
    is unsatisfiable.  Results are cached (the fixpoint re-checks the same
    implications many times as the candidate solution shrinks), and global
    statistics are kept for the benchmark harness.

    With hash-consed predicates the cache is a hashtable keyed on the
    interned query: hashing is O(1) (memoized), bucket comparison is
    physical equality.  Each [Invalid] entry stores its falsifying model
    so cache hits repopulate {!last_cex} — previously a hit returned
    [Invalid] with a stale counterexample. *)

open Liquid_logic

type result = Valid | Invalid | Unknown

type stats = {
  mutable queries : int; (* total validity queries *)
  mutable cache_hits : int;
  mutable sat_checks : int; (* DPLL+theory invocations *)
  mutable unknowns : int;
  mutable time : float; (* seconds inside the solver *)
}

let stats = { queries = 0; cache_hits = 0; sat_checks = 0; unknowns = 0; time = 0.0 }

let reset_stats () =
  stats.queries <- 0;
  stats.cache_hits <- 0;
  stats.sat_checks <- 0;
  stats.unknowns <- 0;
  stats.time <- 0.0

let pp_stats ppf () =
  Fmt.pf ppf "queries=%d cache-hits=%d sat-checks=%d unknowns=%d time=%.3fs"
    stats.queries stats.cache_hits stats.sat_checks stats.unknowns stats.time

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

(** Counterexample values: re-exported from {!Theory} so consumers don't
    reach below the public SMT interface. *)
type cex_value = Theory.value = Vint of int | Vbool of bool

let pp_cex_value = Theory.pp_value

(* Entries keep the falsifying model of Invalid answers (empty for
   Valid/Unknown) so hits can restore [last_cex] — both the display form
   and the raw-label form — plus the deterministic work units the
   original SAT check cost, replayed on hits.  Replaying model and work
   makes every answer-bearing side channel cache-temperature-invariant:
   a warm re-run observes exactly what the cold run observed. *)
type centry = {
  ce_res : result;
  ce_cex : (string * cex_value) list;
  ce_raw : (string * cex_value) list;
  ce_work : int;
}

let cache : centry Pred.Tbl.t = Pred.Tbl.create 4096

let cache_enabled = ref true

let clear_cache () = Pred.Tbl.reset cache

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

(** Counterexample for the most recent [Invalid] answer (values the
    query's source-level entities take in a falsifying model). *)
let last_cex : (string * cex_value) list ref = ref []

(** Counterexample of the most recent [Invalid] answer, under original
    (uncleaned) entity labels — the form a strict evaluator can resolve
    terms against without alpha-renaming collisions.  Restored on result
    cache hits from the cached entry, so it is identical whether the
    answer was freshly SAT-checked or replayed: callers must treat an
    empty value as "no model available". *)
let last_cex_raw : (string * cex_value) list ref = ref []

(** Deterministic work units of the most recently decided query: theory
    literals processed plus simplex pivots spent by its SAT check —
    measured on fresh checks, {e replayed} from the cache on hits, zero
    for trivially decided queries.  A proxy for query cost that, unlike
    wall-clock time, is a pure function of the query, so policy decisions
    made on it are reproducible across runs and cache temperatures. *)
let last_work : int ref = ref 0

(** Monotone sum of {!last_work} over all decided queries (replayed work
    included), for callers that meter spans of work via deltas. *)
let work_total : int ref = ref 0

(** Clear every module-level ref that carries {e answers} (or per-query
    diagnostics) from one verification run into the next, across the
    whole SMT stack: the counterexample refs of this module, {!Dpll} and
    {!Theory}, and the per-run instrumentation counters of {!Dpll},
    {!Theory} and {!Lia}.  A resident verification daemon calls this per
    request so it can never report a stale counterexample from a
    previous program; the pipeline calls it at the start of every run.

    Deliberately untouched: the result cache (its entries are keyed on
    interned queries and valid forever — clearing it is what
    {!clear_cache} is for) and the cumulative {!stats} counters, which
    every consumer (pipeline, benches) reads as before/after deltas and
    which must stay monotone while partition workers replay their
    movements into a parent process. *)
let reset_run_state () =
  last_cex := [];
  last_cex_raw := [];
  last_work := 0;
  Dpll.last_model := [];
  Dpll.last_model_raw := [];
  Theory.last_model := [];
  Theory.last_model_raw := [];
  Dpll.models_total := 0;
  Dpll.max_models := 0;
  Dpll.max_atoms := 0;
  Theory.ncalls := 0;
  Theory.nlits_total := 0;
  Simplex.npivots := 0;
  Lia.ncalls := 0;
  Lia.nnodes_total := 0;
  Lia.time_in := 0.0

let check_formula (q : Pred.t) : result =
  stats.sat_checks <- stats.sat_checks + 1;
  last_cex_raw := [];
  let w0 = !Theory.nlits_total + !Simplex.npivots in
  let r =
    match Dpll.check_sat q with
    | Dpll.Unsat -> Valid
    | Dpll.Sat ->
        last_cex := !Dpll.last_model;
        last_cex_raw := !Dpll.last_model_raw;
        Invalid
    | Dpll.Unknown ->
        stats.unknowns <- stats.unknowns + 1;
        Unknown
  in
  last_work := max 1 (!Theory.nlits_total + !Simplex.npivots - w0);
  work_total := !work_total + !last_work;
  r

(* ------------------------------------------------------------------ *)
(* Hypothesis relevance pruning                                        *)
(* ------------------------------------------------------------------ *)

(** Restrict hypotheses to those transitively sharing a variable with the
    goal.  Dropping hypotheses can only make an implication {e harder} to
    prove, so pruning is sound for a validity checker; the precision cost
    (a contradiction among pruned hypotheses is no longer detected) is the
    classic trade DSOLVE makes, and it shrinks queries dramatically:
    liquid environments embed every in-scope binding, most of which are
    irrelevant to any one obligation. *)
let prune_enabled = ref true

let pred_vars p = List.map fst (Pred.free_vars p)

(** Indices (into [hyps]) retained by relevance pruning against a seed
    predicate.  Ground hypotheses are always retained.  Free-variable
    sets come memoized off the hash-consed nodes, so tagging is cheap;
    the closure itself is a breadth-first search over an inverted
    variable → hypothesis index, linear in total variable occurrences. *)
let prune_hyps_idx (hyps : Pred.t list) (seed : Pred.t) : int list =
  if not !prune_enabled then List.mapi (fun i _ -> i) hyps
  else begin
    let vars = Array.of_list (List.map pred_vars hyps) in
    let n = Array.length vars in
    let var_hyps : (Liquid_common.Ident.t, int list) Hashtbl.t =
      Hashtbl.create (2 * n)
    in
    Array.iteri
      (fun i vs ->
        List.iter
          (fun v ->
            Hashtbl.replace var_hyps v
              (i :: (try Hashtbl.find var_hyps v with Not_found -> [])))
          vs)
      vars;
    let keep = Array.make n false in
    let seen : (Liquid_common.Ident.t, unit) Hashtbl.t = Hashtbl.create 64 in
    let queue = Queue.create () in
    let visit v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        Queue.add v queue
      end
    in
    List.iter (fun (x, _) -> visit x) (Pred.free_vars seed);
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      match Hashtbl.find_opt var_hyps v with
      | None -> ()
      | Some is ->
          List.iter
            (fun i ->
              if not (keep.(i)) then begin
                keep.(i) <- true;
                List.iter visit vars.(i)
              end)
            is
    done;
    let kept_idx = ref [] in
    for i = n - 1 downto 0 do
      if vars.(i) = [] || keep.(i) then kept_idx := i :: !kept_idx
    done;
    !kept_idx
  end

let prune_hyps (hyps : Pred.t list) (goal : Pred.t) : Pred.t list =
  if not !prune_enabled then hyps
  else
    let arr = Array.of_list hyps in
    List.map (fun i -> arr.(i)) (prune_hyps_idx hyps goal)

(* Shared decision core: trivial views, then cache (restoring the model
   side channels and replaying work on hits), then a fresh SAT check
   whose model and work are recorded in the entry. *)
let decide_interned (query : Pred.t) : result =
  match Pred.view query with
  | Pred.False ->
      last_work := 0;
      Valid
  | Pred.True ->
      last_cex_raw := [];
      last_work := 0;
      Invalid
  | _ -> (
      match
        if !cache_enabled then Pred.Tbl.find_opt cache query else None
      with
      | Some e ->
          stats.cache_hits <- stats.cache_hits + 1;
          if e.ce_res = Invalid then last_cex := e.ce_cex;
          last_cex_raw := e.ce_raw;
          last_work := e.ce_work;
          work_total := !work_total + e.ce_work;
          e.ce_res
      | None ->
          let t0 = Unix.gettimeofday () in
          let r = check_formula query in
          stats.time <- stats.time +. (Unix.gettimeofday () -. t0);
          if !cache_enabled then
            Pred.Tbl.replace cache query
              {
                ce_res = r;
                ce_cex = (if r = Invalid then !last_cex else []);
                ce_raw = (if r = Invalid then !last_cex_raw else []);
                ce_work = !last_work;
              };
          r)

(* Decide [And hyps => goal] with [hyps] taken verbatim (no pruning). *)
let check_pruned (hyps : Pred.t list) (goal : Pred.t) : result =
  decide_interned (Pred.conj (Pred.not_ goal :: hyps))

(** [check_valid ~kept hyps goal] decides whether the implication
    [kept /\ hyps => goal] holds in QF-EUFLIA.  [hyps] are subject to
    relevance pruning; [kept] hypotheses (typically path guards, whose
    mutual contradiction must stay detectable) are kept verbatim and seed
    the relevance closure. *)
let check_valid ?(kept : Pred.t list = []) (hyps : Pred.t list) (goal : Pred.t)
    : result =
  stats.queries <- stats.queries + 1;
  let hyps = prune_hyps hyps (Pred.conj (goal :: kept)) @ kept in
  check_pruned hyps goal

(** Like {!check_valid}, but also returns the indices of [hyps] retained
    by relevance pruning, so incremental callers can record which
    hypotheses the verdict could depend on. *)
let check_valid_idx ?(kept : Pred.t list = []) (hyps : Pred.t list)
    (goal : Pred.t) : result * int list =
  stats.queries <- stats.queries + 1;
  let idx = prune_hyps_idx hyps (Pred.conj (goal :: kept)) in
  let arr = Array.of_list hyps in
  let hyps = List.map (fun i -> arr.(i)) idx @ kept in
  (check_pruned hyps goal, idx)

(** A pruned implication query prepared once and decided later: the
    interned cache key plus the hypothesis indices retained by pruning.
    Lets the incremental fixpoint probe the cache for an instance and,
    on a miss, SAT-check the very same query without rebuilding it. *)
type prepared = { query : Pred.t; pruned_idx : int list }

let prepare ?(kept : Pred.t list = []) (hyps : Pred.t list) (goal : Pred.t)
    : prepared =
  let idx = prune_hyps_idx hyps (Pred.conj (goal :: kept)) in
  let arr = Array.of_list hyps in
  let pruned = List.map (fun i -> arr.(i)) idx @ kept in
  { query = Pred.conj (Pred.not_ goal :: pruned); pruned_idx = idx }

(** Resolve a prepared query against the result cache without ever
    invoking the SAT solver: [None] means deciding it would need a fresh
    SAT check.  Counts as a query (and cache hit) only when it
    answers. *)
let probe_query (p : prepared) : result option =
  let hit r =
    stats.queries <- stats.queries + 1;
    Some r
  in
  match Pred.view p.query with
  | Pred.False ->
      last_work := 0;
      hit Valid
  | Pred.True ->
      last_cex_raw := [];
      last_work := 0;
      hit Invalid
  | _ -> (
      match
        if !cache_enabled then Pred.Tbl.find_opt cache p.query else None
      with
      | Some e ->
          stats.cache_hits <- stats.cache_hits + 1;
          if e.ce_res = Invalid then last_cex := e.ce_cex;
          last_cex_raw := e.ce_raw;
          last_work := e.ce_work;
          work_total := !work_total + e.ce_work;
          hit e.ce_res
      | None -> None)

(** Decide a prepared query (cache, then SAT). *)
let check_query (p : prepared) : result =
  stats.queries <- stats.queries + 1;
  decide_interned p.query

(** Boolean view: [Unknown] conservatively counts as "not valid". *)
let is_valid hyps goal = check_valid hyps goal = Valid

(** Satisfiability of a conjunction (used by tests). *)
let is_sat (p : Pred.t) : bool = Dpll.check_sat p <> Dpll.Unsat

(* ------------------------------------------------------------------ *)
(* Incremental assertion context                                       *)
(* ------------------------------------------------------------------ *)

(* A context keeps one Tseitin builder alive across asserts: the atom
   table (term bank), clause list and variable counter grow
   monotonically, so [push] records marks and [pop] truncates back to
   them.  Checks run the same DPLL+theory search as one-shot queries,
   over the accumulated clauses — a fact is encoded once, however many
   subsequent checks it participates in.  This is what makes per-κ
   pruning affordable: the κ's well-formedness facts are asserted once,
   then each candidate instance costs one small encode + one check. *)

type mark = {
  m_next : int;
  m_natoms : int; (* length of [atom_list] at push time *)
  m_atom_list : Pred.t list;
  m_cls : Prop.clause list;
  m_roots : Prop.lit list;
  m_asserted : Pred.t list;
}

type context = {
  ctx_bld : Prop.builder;
  mutable ctx_roots : Prop.lit list; (* literals asserted true *)
  mutable ctx_asserted : Pred.t list; (* reversed assertion order *)
  mutable ctx_frames : mark list;
}

let create_context () : context =
  {
    ctx_bld = Prop.new_builder ();
    ctx_roots = [];
    ctx_asserted = [];
    ctx_frames = [];
  }

let ctx_push (c : context) : unit =
  c.ctx_frames <-
    {
      m_next = c.ctx_bld.Prop.next;
      m_natoms = List.length c.ctx_bld.Prop.atom_list;
      m_atom_list = c.ctx_bld.Prop.atom_list;
      m_cls = c.ctx_bld.Prop.cls;
      m_roots = c.ctx_roots;
      m_asserted = c.ctx_asserted;
    }
    :: c.ctx_frames

let ctx_pop (c : context) : unit =
  match c.ctx_frames with
  | [] -> invalid_arg "Solver.ctx_pop: no frame to pop"
  | m :: rest ->
      (* Un-intern the atoms added since the mark, so a later re-assert
         re-allocates them below the restored variable counter. *)
      let added = List.length c.ctx_bld.Prop.atom_list - m.m_natoms in
      List.iteri
        (fun i a -> if i < added then Pred.Tbl.remove c.ctx_bld.Prop.atom_tbl a)
        c.ctx_bld.Prop.atom_list;
      c.ctx_bld.Prop.next <- m.m_next;
      c.ctx_bld.Prop.atom_list <- m.m_atom_list;
      c.ctx_bld.Prop.cls <- m.m_cls;
      c.ctx_roots <- m.m_roots;
      c.ctx_asserted <- m.m_asserted;
      c.ctx_frames <- rest

let ctx_assert (c : context) (p : Pred.t) : unit =
  let l = Prop.encode c.ctx_bld p in
  c.ctx_roots <- l :: c.ctx_roots;
  c.ctx_asserted <- p :: c.ctx_asserted

let ctx_assertions (c : context) : Pred.t list = List.rev c.ctx_asserted

(* Satisfiability of the current assertion set. *)
let ctx_run (c : context) : Dpll.result =
  stats.sat_checks <- stats.sat_checks + 1;
  let t0 = Unix.gettimeofday () in
  let proj = Array.make (max 1 c.ctx_bld.Prop.next) None in
  List.iter
    (fun a -> proj.(Pred.Tbl.find c.ctx_bld.Prop.atom_tbl a) <- Some a)
    c.ctx_bld.Prop.atom_list;
  let clauses =
    List.rev_append
      (List.rev_map (fun l -> [ l ]) c.ctx_roots)
      c.ctx_bld.Prop.cls
  in
  let r = Dpll.check_sat_cnf ~nvars:1 ~atoms:proj clauses in
  if r = Dpll.Unknown then stats.unknowns <- stats.unknowns + 1;
  stats.time <- stats.time +. (Unix.gettimeofday () -. t0);
  r

let ctx_consistent (c : context) : bool = ctx_run c <> Dpll.Unsat

let ctx_entails (c : context) (goal : Pred.t) : result =
  stats.queries <- stats.queries + 1;
  ctx_push c;
  ctx_assert c (Pred.not_ goal);
  let r = ctx_run c in
  ctx_pop c;
  match r with
  | Dpll.Unsat -> Valid
  | Dpll.Sat -> Invalid
  | Dpll.Unknown -> Unknown

let with_context (f : context -> 'a) : 'a = f (create_context ())
