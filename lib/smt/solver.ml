(** Public SMT interface: validity of quantifier-free EUFLIA implications.

    This is the module the liquid-type fixpoint talks to.  A query asks
    whether [hyps |- goal] is valid, i.e. whether [And hyps /\ Not goal]
    is unsatisfiable.  Results are cached (the fixpoint re-checks the same
    implications many times as the candidate solution shrinks), and global
    statistics are kept for the benchmark harness.

    With hash-consed predicates the cache is a hashtable keyed on the
    interned query: hashing is O(1) (memoized), bucket comparison is
    physical equality.  Each [Invalid] entry stores its falsifying model
    so cache hits repopulate {!last_cex} — previously a hit returned
    [Invalid] with a stale counterexample. *)

open Liquid_logic

type result = Valid | Invalid | Unknown

type stats = {
  mutable queries : int; (* total validity queries *)
  mutable cache_hits : int;
  mutable sat_checks : int; (* DPLL+theory invocations *)
  mutable unknowns : int;
  mutable time : float; (* seconds inside the solver *)
}

let stats = { queries = 0; cache_hits = 0; sat_checks = 0; unknowns = 0; time = 0.0 }

let reset_stats () =
  stats.queries <- 0;
  stats.cache_hits <- 0;
  stats.sat_checks <- 0;
  stats.unknowns <- 0;
  stats.time <- 0.0

let pp_stats ppf () =
  Fmt.pf ppf "queries=%d cache-hits=%d sat-checks=%d unknowns=%d time=%.3fs"
    stats.queries stats.cache_hits stats.sat_checks stats.unknowns stats.time

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

(** Counterexample values: re-exported from {!Theory} so consumers don't
    reach below the public SMT interface. *)
type cex_value = Theory.value = Vint of int | Vbool of bool

let pp_cex_value = Theory.pp_value

(* Entries keep the falsifying model of Invalid answers (empty for
   Valid/Unknown) so hits can restore [last_cex]. *)
let cache : (result * (string * cex_value) list) Pred.Tbl.t =
  Pred.Tbl.create 4096

let cache_enabled = ref true

let clear_cache () = Pred.Tbl.reset cache

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

(** Counterexample for the most recent [Invalid] answer (values the
    query's source-level entities take in a falsifying model). *)
let last_cex : (string * cex_value) list ref = ref []

(** Clear every module-level ref that carries {e answers} (or per-query
    diagnostics) from one verification run into the next, across the
    whole SMT stack: the counterexample refs of this module, {!Dpll} and
    {!Theory}, and the per-run instrumentation counters of {!Dpll},
    {!Theory} and {!Lia}.  A resident verification daemon calls this per
    request so it can never report a stale counterexample from a
    previous program; the pipeline calls it at the start of every run.

    Deliberately untouched: the result cache (its entries are keyed on
    interned queries and valid forever — clearing it is what
    {!clear_cache} is for) and the cumulative {!stats} counters, which
    every consumer (pipeline, benches) reads as before/after deltas and
    which must stay monotone while partition workers replay their
    movements into a parent process. *)
let reset_run_state () =
  last_cex := [];
  Dpll.last_model := [];
  Theory.last_model := [];
  Dpll.models_total := 0;
  Dpll.max_models := 0;
  Dpll.max_atoms := 0;
  Theory.ncalls := 0;
  Lia.ncalls := 0;
  Lia.nnodes_total := 0;
  Lia.time_in := 0.0

let check_formula (q : Pred.t) : result =
  stats.sat_checks <- stats.sat_checks + 1;
  match Dpll.check_sat q with
  | Dpll.Unsat -> Valid
  | Dpll.Sat ->
      last_cex := !Dpll.last_model;
      Invalid
  | Dpll.Unknown ->
      stats.unknowns <- stats.unknowns + 1;
      Unknown

(* ------------------------------------------------------------------ *)
(* Hypothesis relevance pruning                                        *)
(* ------------------------------------------------------------------ *)

(** Restrict hypotheses to those transitively sharing a variable with the
    goal.  Dropping hypotheses can only make an implication {e harder} to
    prove, so pruning is sound for a validity checker; the precision cost
    (a contradiction among pruned hypotheses is no longer detected) is the
    classic trade DSOLVE makes, and it shrinks queries dramatically:
    liquid environments embed every in-scope binding, most of which are
    irrelevant to any one obligation. *)
let prune_enabled = ref true

let pred_vars p = List.map fst (Pred.free_vars p)

(** Indices (into [hyps]) retained by relevance pruning against a seed
    predicate.  Ground hypotheses are always retained.  Free-variable
    sets come memoized off the hash-consed nodes, so tagging is cheap;
    the closure itself is a breadth-first search over an inverted
    variable → hypothesis index, linear in total variable occurrences. *)
let prune_hyps_idx (hyps : Pred.t list) (seed : Pred.t) : int list =
  if not !prune_enabled then List.mapi (fun i _ -> i) hyps
  else begin
    let vars = Array.of_list (List.map pred_vars hyps) in
    let n = Array.length vars in
    let var_hyps : (Liquid_common.Ident.t, int list) Hashtbl.t =
      Hashtbl.create (2 * n)
    in
    Array.iteri
      (fun i vs ->
        List.iter
          (fun v ->
            Hashtbl.replace var_hyps v
              (i :: (try Hashtbl.find var_hyps v with Not_found -> [])))
          vs)
      vars;
    let keep = Array.make n false in
    let seen : (Liquid_common.Ident.t, unit) Hashtbl.t = Hashtbl.create 64 in
    let queue = Queue.create () in
    let visit v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        Queue.add v queue
      end
    in
    List.iter (fun (x, _) -> visit x) (Pred.free_vars seed);
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      match Hashtbl.find_opt var_hyps v with
      | None -> ()
      | Some is ->
          List.iter
            (fun i ->
              if not (keep.(i)) then begin
                keep.(i) <- true;
                List.iter visit vars.(i)
              end)
            is
    done;
    let kept_idx = ref [] in
    for i = n - 1 downto 0 do
      if vars.(i) = [] || keep.(i) then kept_idx := i :: !kept_idx
    done;
    !kept_idx
  end

let prune_hyps (hyps : Pred.t list) (goal : Pred.t) : Pred.t list =
  if not !prune_enabled then hyps
  else
    let arr = Array.of_list hyps in
    List.map (fun i -> arr.(i)) (prune_hyps_idx hyps goal)

(* Decide [And hyps => goal] with [hyps] taken verbatim (no pruning). *)
let check_pruned (hyps : Pred.t list) (goal : Pred.t) : result =
  let query = Pred.conj (Pred.not_ goal :: hyps) in
  match Pred.view query with
  | Pred.False -> Valid
  | Pred.True -> Invalid
  | _ -> (
      match
        if !cache_enabled then Pred.Tbl.find_opt cache query else None
      with
      | Some (r, cex) ->
          stats.cache_hits <- stats.cache_hits + 1;
          if r = Invalid then last_cex := cex;
          r
      | None ->
          let t0 = Unix.gettimeofday () in
          let r = check_formula query in
          stats.time <- stats.time +. (Unix.gettimeofday () -. t0);
          if !cache_enabled then
            Pred.Tbl.replace cache query
              (r, if r = Invalid then !last_cex else []);
          r)

(** [check_valid ~kept hyps goal] decides whether the implication
    [kept /\ hyps => goal] holds in QF-EUFLIA.  [hyps] are subject to
    relevance pruning; [kept] hypotheses (typically path guards, whose
    mutual contradiction must stay detectable) are kept verbatim and seed
    the relevance closure. *)
let check_valid ?(kept : Pred.t list = []) (hyps : Pred.t list) (goal : Pred.t)
    : result =
  stats.queries <- stats.queries + 1;
  let hyps = prune_hyps hyps (Pred.conj (goal :: kept)) @ kept in
  check_pruned hyps goal

(** Like {!check_valid}, but also returns the indices of [hyps] retained
    by relevance pruning, so incremental callers can record which
    hypotheses the verdict could depend on. *)
let check_valid_idx ?(kept : Pred.t list = []) (hyps : Pred.t list)
    (goal : Pred.t) : result * int list =
  stats.queries <- stats.queries + 1;
  let idx = prune_hyps_idx hyps (Pred.conj (goal :: kept)) in
  let arr = Array.of_list hyps in
  let hyps = List.map (fun i -> arr.(i)) idx @ kept in
  (check_pruned hyps goal, idx)

(** A pruned implication query prepared once and decided later: the
    interned cache key plus the hypothesis indices retained by pruning.
    Lets the incremental fixpoint probe the cache for an instance and,
    on a miss, SAT-check the very same query without rebuilding it. *)
type prepared = { query : Pred.t; pruned_idx : int list }

let prepare ?(kept : Pred.t list = []) (hyps : Pred.t list) (goal : Pred.t)
    : prepared =
  let idx = prune_hyps_idx hyps (Pred.conj (goal :: kept)) in
  let arr = Array.of_list hyps in
  let pruned = List.map (fun i -> arr.(i)) idx @ kept in
  { query = Pred.conj (Pred.not_ goal :: pruned); pruned_idx = idx }

(** Resolve a prepared query against the result cache without ever
    invoking the SAT solver: [None] means deciding it would need a fresh
    SAT check.  Counts as a query (and cache hit) only when it
    answers. *)
let probe_query (p : prepared) : result option =
  let hit r =
    stats.queries <- stats.queries + 1;
    Some r
  in
  match Pred.view p.query with
  | Pred.False -> hit Valid
  | Pred.True -> hit Invalid
  | _ -> (
      match
        if !cache_enabled then Pred.Tbl.find_opt cache p.query else None
      with
      | Some (r, cex) ->
          stats.cache_hits <- stats.cache_hits + 1;
          if r = Invalid then last_cex := cex;
          hit r
      | None -> None)

(** Decide a prepared query (cache, then SAT). *)
let check_query (p : prepared) : result =
  stats.queries <- stats.queries + 1;
  match Pred.view p.query with
  | Pred.False -> Valid
  | Pred.True -> Invalid
  | _ -> (
      match
        if !cache_enabled then Pred.Tbl.find_opt cache p.query else None
      with
      | Some (r, cex) ->
          stats.cache_hits <- stats.cache_hits + 1;
          if r = Invalid then last_cex := cex;
          r
      | None ->
          let t0 = Unix.gettimeofday () in
          let r = check_formula p.query in
          stats.time <- stats.time +. (Unix.gettimeofday () -. t0);
          if !cache_enabled then
            Pred.Tbl.replace cache p.query
              (r, if r = Invalid then !last_cex else []);
          r)

(** Boolean view: [Unknown] conservatively counts as "not valid". *)
let is_valid hyps goal = check_valid hyps goal = Valid

(** Satisfiability of a conjunction (used by tests). *)
let is_sat (p : Pred.t) : bool = Dpll.check_sat p <> Dpll.Unsat
