(** Lazy-SMT search: DPLL over the propositional abstraction, consulting
    the combined theory solver ({!Theory}) at each propositional model.

    The loop is the classic offline lazy schema: find a propositional
    model; check the induced conjunction of theory literals; on theory
    conflict add a blocking clause (the negation of the assigned theory
    literals) and resume.  Termination: each blocking clause removes at
    least one propositional model from a finite space.

    The propositional search itself is a recursive DPLL with unit
    propagation, stopping as soon as every clause is satisfied (leaving
    irrelevant atoms unassigned keeps theory conjunctions small and
    blocking clauses general). *)

type result = Sat | Unsat | Unknown

(** Counterexample assignment of the last [Sat] answer. *)
let last_model : Theory.model ref = ref []

(** Same assignment under original (uncleaned) labels; see
    {!Theory.last_model_raw}. *)
let last_model_raw : Theory.model ref = ref []

let models_total = ref 0
let max_models = ref 0
let max_atoms = ref 0

type assignment = int array (* 0 = unassigned, 1 = true, -1 = false *)

let var_of_lit l = abs l - 1
let sign_of_lit l = if l > 0 then 1 else -1

(** Evaluate a clause: [`Sat], [`Conflict], or [`Unit l], or [`Open]. *)
let eval_clause (asg : assignment) (c : Prop.clause) =
  let unassigned = ref [] in
  let sat = ref false in
  List.iter
    (fun l ->
      match asg.(var_of_lit l) with
      | 0 -> unassigned := l :: !unassigned
      | v -> if v = sign_of_lit l then sat := true)
    c;
  if !sat then `Sat
  else
    match !unassigned with
    | [] -> `Conflict
    | [ l ] -> `Unit l
    | _ -> `Open

(** Unit propagation to fixpoint; returns the trail of assigned literals,
    or [None] on conflict (after undoing its own assignments). *)
let propagate (asg : assignment) clauses =
  let trail = ref [] in
  let undo () = List.iter (fun l -> asg.(var_of_lit l) <- 0) !trail in
  let progress = ref true in
  let conflict = ref false in
  while !progress && not !conflict do
    progress := false;
    List.iter
      (fun c ->
        if not !conflict then
          match eval_clause asg c with
          | `Conflict -> conflict := true
          | `Unit l ->
              asg.(var_of_lit l) <- sign_of_lit l;
              trail := l :: !trail;
              progress := true
          | `Sat | `Open -> ())
      clauses
  done;
  if !conflict then begin
    undo ();
    None
  end
  else Some !trail

let all_sat asg clauses =
  List.for_all (fun c -> eval_clause asg c = `Sat) clauses

(** Find a propositional model (partial: stops once all clauses are
    satisfied).  Returns [true] and leaves the model in [asg]. *)
let rec find_model (asg : assignment) nvars clauses =
  match propagate asg clauses with
  | None -> false
  | Some trail ->
      if all_sat asg clauses then true
      else begin
        (* Pick the first unassigned variable appearing in an unsatisfied
           clause (guaranteed to exist). *)
        let pick = ref (-1) in
        (try
           List.iter
             (fun c ->
               match eval_clause asg c with
               | `Open | `Unit _ ->
                   List.iter
                     (fun l ->
                       if asg.(var_of_lit l) = 0 then begin
                         pick := var_of_lit l;
                         raise Exit
                       end)
                     c
               | _ -> ())
             clauses
         with Exit -> ());
        let v = !pick in
        if v < 0 then (* all clauses decided; should have been caught *)
          true
        else begin
          let try_value value =
            asg.(v) <- value;
            if find_model asg nvars clauses then true
            else begin
              asg.(v) <- 0;
              false
            end
          in
          if try_value 1 then true
          else if try_value (-1) then true
          else begin
            List.iter (fun l -> asg.(var_of_lit l) <- 0) trail;
            false
          end
        end
      end

(** Satisfiability of a CNF whose theory atoms are named by [atoms]:
    [atoms.(v) = Some a] maps propositional variable [v] to theory atom
    [a] ([None]: a Tseitin definition variable).  {!check_sat} wraps this
    for a one-shot predicate; the incremental assertion context
    ({!Solver}) calls it directly over its persistent clause set, where
    atom and Tseitin variables interleave. *)
let check_sat_cnf ~(nvars : int) ~(atoms : Liquid_logic.Pred.t option array)
    (clauses0 : Prop.clause list) : result =
  let nvars =
    List.fold_left
      (fun acc c -> List.fold_left (fun acc l -> max acc (abs l)) acc c)
      nvars clauses0
  in
  let natoms = Array.length atoms in
  (* Fast path: literals forced by unit propagation hold in every
     propositional model, so if they are already theory-inconsistent the
     whole formula is unsatisfiable after a single theory call.  Liquid
     validity queries are dominated by this case: hypotheses are mostly
     top-level conjuncts and goals are atomic, so the contradiction is
     usually visible without any case analysis. *)
  let fast =
    let asg = Array.make nvars 0 in
    match propagate asg clauses0 with
    | None -> Some Unsat
    | Some _ ->
        let lits = ref [] in
        for v = 0 to natoms - 1 do
          match atoms.(v) with
          | Some a when asg.(v) <> 0 -> lits := (a, asg.(v) = 1) :: !lits
          | _ -> ()
        done;
        if !lits <> [] && Theory.check_sat !lits = Theory.Unsat then Some Unsat
        else None
  in
  match fast with
  | Some r -> r
  | None ->
  let extra = ref [] in
  let rec loop iters =
    if iters <= 0 then Unknown
    else begin
      let asg = Array.make nvars 0 in
      if not (find_model asg nvars (clauses0 @ !extra)) then Unsat
      else begin
        (* Project onto theory literals (variable id, atom, polarity). *)
        let lits = ref [] in
        for v = 0 to natoms - 1 do
          match atoms.(v) with
          | Some a when asg.(v) <> 0 -> lits := (v, a, asg.(v) = 1) :: !lits
          | _ -> ()
        done;
        incr models_total;
        (let m = 2000 - iters + 1 in if m > !max_models then max_models := m);
        (if natoms > !max_atoms then max_atoms := natoms);
        match Theory.check_sat (List.map (fun (_, a, p) -> (a, p)) !lits) with
        | Theory.Sat ->
            (* The theory model only values arithmetic entities; boolean
               program variables live as propositional [Bvar] atoms whose
               truth values the DPLL assignment itself carries.  Merge
               them in so boolean counterexample values surface too. *)
            let bools =
              List.filter_map
                (fun (_, a, pos) ->
                  match Liquid_logic.Pred.view a with
                  | Liquid_logic.Pred.Bvar x -> (
                      match
                        Theory.clean_label (Liquid_common.Ident.to_string x)
                      with
                      | Some l -> Some (l, Theory.Vbool pos)
                      | None -> None)
                  | _ -> None)
                !lits
            in
            let bools_raw =
              List.filter_map
                (fun (_, a, pos) ->
                  match Liquid_logic.Pred.view a with
                  | Liquid_logic.Pred.Bvar x ->
                      Some
                        ( Liquid_common.Ident.to_string x,
                          Theory.Vbool pos )
                  | _ -> None)
                !lits
            in
            let from_theory = !Theory.last_model in
            last_model :=
              List.sort compare
                (from_theory
                @ List.filter
                    (fun (l, _) -> not (List.mem_assoc l from_theory))
                    bools);
            let from_theory_raw = !Theory.last_model_raw in
            last_model_raw :=
              List.sort compare
                (from_theory_raw
                @ List.filter
                    (fun (l, _) -> not (List.mem_assoc l from_theory_raw))
                    bools_raw);
            Sat
        | Theory.Unknown -> Unknown
        | Theory.Unsat ->
            (* Shrink the conflict to a (locally) minimal unsat core before
               blocking: a short blocking clause excludes exponentially
               more future models than the full assignment would.  The
               greedy deletion filter costs one theory call per literal,
               which pays for itself by slashing the model enumeration. *)
            let core =
              (* Adaptive: plain blocking is cheapest when a query needs
                 only a few models; once enumeration shows signs of
                 blowing up, pay for minimal cores. *)
              if 2000 - iters < 8 || List.length !lits > 100 then !lits
              else
                let rec shrink kept pending =
                  match pending with
                  | [] -> kept
                  | l :: rest ->
                      let test =
                        List.map (fun (_, a, p) -> (a, p)) (kept @ rest)
                      in
                      if Theory.check_sat test = Theory.Unsat then
                        shrink kept rest
                      else shrink (l :: kept) rest
                in
                shrink [] !lits
            in
            let blocking =
              List.map (fun (v, _, pos) -> if pos then -(v + 1) else v + 1) core
            in
            extra := blocking :: !extra;
            loop (iters - 1)
      end
    end
  in
  loop 2000

(** Check satisfiability of [p] (a quantifier-free EUFLIA predicate). *)
let check_sat (p : Liquid_logic.Pred.t) : result =
  let cnf = Prop.of_pred p in
  (* [of_pred] interns atoms first, so they form the variable prefix. *)
  let atoms = Array.map Option.some cnf.Prop.atoms in
  check_sat_cnf ~nvars:1 ~atoms ([ cnf.Prop.root ] :: cnf.Prop.clauses)
