(** Propositional abstraction of predicates.

    Maps a {!Liquid_logic.Pred} formula to CNF over propositional
    variables via Tseitin encoding.  Theory atoms occupy the low variable
    ids ([0 .. natoms-1]); Tseitin definition variables come after, so the
    DPLL layer can cheaply project a propositional model onto theory
    literals.

    Atoms are canonicalized before being interned ([Gt]/[Ge] swap into
    [Lt]/[Le]; [Ne] becomes negated [Eq]; equalities are oriented by term
    order) so that syntactic variants share a propositional variable. *)

open Liquid_logic

(** A literal is [v+1] (positive) or [-(v+1)] (negative) for variable [v]. *)
type lit = int

type clause = lit list

type cnf = {
  clauses : clause list;
  natoms : int; (* theory atoms are variables [0 .. natoms-1] *)
  atoms : Pred.t array; (* atom of each theory variable *)
  root : lit; (* literal representing the whole formula *)
}

type builder = {
  mutable next : int;
  atom_tbl : int Pred.Tbl.t; (* keyed on interned atoms: O(1) hash/equal *)
  mutable atom_list : Pred.t list; (* reversed *)
  mutable cls : clause list;
}

let lit_of v = v + 1
let neg_lit l = -l

(** Canonicalize an atom; returns the canonical atom and a polarity flip.
    Memoized per interned atom (the term bank): atoms recur across every
    query of a run, and hash-consing makes the table key O(1). *)
let canon_tbl : (Pred.t * bool) Pred.Tbl.t = Pred.Tbl.create 4096

let canon (p : Pred.t) : Pred.t * bool =
  match Pred.view p with
  | Pred.Atom (a, r, b) -> (
      match Pred.Tbl.find_opt canon_tbl p with
      | Some c -> c
      | None ->
          let c =
            match r with
            | Pred.Gt -> (Pred.make (Pred.Atom (b, Pred.Lt, a)), true)
            | Pred.Ge -> (Pred.make (Pred.Atom (b, Pred.Le, a)), true)
            | Pred.Ne ->
                let a, b = if Term.compare a b <= 0 then (a, b) else (b, a) in
                (Pred.make (Pred.Atom (a, Pred.Eq, b)), false)
            | Pred.Eq ->
                let a, b = if Term.compare a b <= 0 then (a, b) else (b, a) in
                (Pred.make (Pred.Atom (a, Pred.Eq, b)), true)
            | Pred.Lt | Pred.Le -> (p, true)
          in
          Pred.Tbl.add canon_tbl p c;
          c)
  | _ -> (p, true)

(** Orientation-normal form of a whole predicate: every atom replaced by
    its canonical form (negated verbatim when the polarity flips), with
    the connective structure kept as-is.  Two predicates with the same
    normal form are logically equivalent — they differ only in atom
    orientation ([x >= v] vs [v <= x], [a <> b] vs [b <> a]) — and,
    crucially, substitution commutes with normalization, so equal-form
    qualifier instances remain equal-form under every κ instantiation.
    The result is a {e key}, not a formula to solve or print: [Pred.make]
    is used verbatim so the smart constructors cannot undo the
    orientation.  Memoized per interned node. *)
let normal_tbl : Pred.t Pred.Tbl.t = Pred.Tbl.create 4096

let rec normalize (p : Pred.t) : Pred.t =
  match Pred.Tbl.find_opt normal_tbl p with
  | Some q -> q
  | None ->
      let q =
        match Pred.view p with
        | Pred.True | Pred.False | Pred.Bvar _ -> p
        | Pred.Atom _ ->
            let a, pos = canon p in
            if pos then a else Pred.make (Pred.Not a)
        | Pred.Not r -> Pred.make (Pred.Not (normalize r))
        | Pred.And ps -> Pred.make (Pred.And (List.map normalize ps))
        | Pred.Or ps -> Pred.make (Pred.Or (List.map normalize ps))
        | Pred.Imp (a, b) -> Pred.make (Pred.Imp (normalize a, normalize b))
        | Pred.Iff (a, b) -> Pred.make (Pred.Iff (normalize a, normalize b))
      in
      Pred.Tbl.add normal_tbl p q;
      q

let atom_var bld p =
  match Pred.Tbl.find_opt bld.atom_tbl p with
  | Some v -> v
  | None ->
      let v = bld.next in
      bld.next <- v + 1;
      Pred.Tbl.add bld.atom_tbl p v;
      bld.atom_list <- p :: bld.atom_list;
      v

(* Tseitin encoding.  [encode] returns a literal equivalent to the
   subformula; definitional clauses are emitted into [bld.cls]. *)

let fresh_var bld =
  let v = bld.next in
  bld.next <- v + 1;
  (* Keep [atom_list] aligned: Tseitin vars are not theory atoms, but we
     only allocate them after all atoms are interned (two-pass), so no
     placeholder is needed. *)
  v

let add bld c = bld.cls <- c :: bld.cls

let rec encode bld (p : Pred.t) : lit =
  match Pred.view p with
  | Pred.True ->
      let v = fresh_var bld in
      add bld [ lit_of v ];
      lit_of v
  | Pred.False ->
      let v = fresh_var bld in
      add bld [ lit_of v ];
      neg_lit (lit_of v)
  | Pred.Atom _ | Pred.Bvar _ ->
      let q, pos = canon p in
      let l = lit_of (atom_var bld q) in
      if pos then l else neg_lit l
  | Pred.Not q -> neg_lit (encode bld q)
  | Pred.And ps ->
      let ls = List.map (encode bld) ps in
      let v = lit_of (fresh_var bld) in
      (* v -> li  and  (l1 & ... & ln) -> v *)
      List.iter (fun l -> add bld [ neg_lit v; l ]) ls;
      add bld (v :: List.map neg_lit ls);
      v
  | Pred.Or ps ->
      let ls = List.map (encode bld) ps in
      let v = lit_of (fresh_var bld) in
      List.iter (fun l -> add bld [ v; neg_lit l ]) ls;
      add bld (neg_lit v :: ls);
      v
  | Pred.Imp (q, r) -> encode bld (Pred.make (Pred.Or [ Pred.make (Pred.Not q); r ]))
  | Pred.Iff (q, r) ->
      let a = encode bld q and b = encode bld r in
      let v = lit_of (fresh_var bld) in
      add bld [ neg_lit v; neg_lit a; b ];
      add bld [ neg_lit v; a; neg_lit b ];
      add bld [ v; a; b ];
      add bld [ v; neg_lit a; neg_lit b ];
      v

(** Collect every (canonical) atom of [p] into the builder, so that atom
    variables form a contiguous prefix. *)
let intern_atoms bld p =
  ignore
    (Pred.fold_atoms
       (fun () a ->
         let q, _ = canon a in
         ignore (atom_var bld q))
       () p)

let new_builder () : builder =
  { next = 0; atom_tbl = Pred.Tbl.create 32; atom_list = []; cls = [] }

let of_pred (p : Pred.t) : cnf =
  let bld = new_builder () in
  intern_atoms bld p;
  let natoms = bld.next in
  let root = encode bld p in
  {
    clauses = bld.cls;
    natoms;
    atoms = Array.of_list (List.rev bld.atom_list);
    root;
  }
