(** Reference interpreter for NanoML — the operational semantics the type
    system is sound for.  Array accesses are bounds-checked and [assert]s
    are checked, so running a verified program doubles as a soundness
    witness in tests. *)

open Liquid_common
open Liquid_lang

type value =
  | Vint of int
  | Vbool of bool
  | Vunit
  | Vtuple of value list
  | Vlist of value list
  | Varray of value array
  | Vcon of string * value list (* user-constructor value *)
  | Vclosure of env ref * Ident.t * Ast.expr
  | Vprim of string * value list (* primitive + collected arguments *)

and env = value Ident.Map.t

exception Bounds_violation of string
exception Assertion_failure of Loc.t
exception Runtime_error of string
exception Out_of_fuel

val pp_value : Format.formatter -> value -> unit

(** The two runtime safety checks the interpreter performs: [assert]
    expressions and the bounds checks of [Array.get]/[Array.set]/
    [Array.make] applications. *)
type check_kind = Check_assert | Check_bounds

(** Observer of every runtime safety check, armed or not: called with
    the source span of the checking expression ([assert] node, or the
    primitive application), the kind, whether the check passed, and a
    human-readable detail on failure ([""] on success).  The return
    value is read only for a {e failed assertion}: [true] recovers
    (the assert evaluates to [()] and execution continues — the gradual
    cast absorbed the failure), [false] raises {!Assertion_failure} as
    usual.  A bounds violation has no value to continue with, so it
    always raises {!Bounds_violation} after the hook observes it. *)
type check_hook = Loc.t -> check_kind -> ok:bool -> detail:string -> bool

(** Run a whole program, returning the environment of top-level values.
    [fuel] bounds evaluation steps (default one million); [quiet]
    suppresses [print_int]/[print_newline] output (default [true]);
    [check] observes (and may absorb) every runtime safety check — the
    hook gradual casts hang off. *)
val run_program :
  ?fuel:int -> ?quiet:bool -> ?check:check_hook -> Ast.program -> env
