(** Reference interpreter for NanoML — the operational semantics the type
    system is sound for.  Array accesses are bounds-checked and [assert]s
    are checked, so running a verified program doubles as a soundness
    witness in tests. *)

open Liquid_common
open Liquid_lang

type value =
  | Vint of int
  | Vbool of bool
  | Vunit
  | Vtuple of value list
  | Vlist of value list
  | Varray of value array
  | Vcon of string * value list (* user-constructor value *)
  | Vclosure of env ref * Ident.t * Ast.expr
  | Vprim of string * value list (* primitive + collected arguments *)

and env = value Ident.Map.t

exception Bounds_violation of string
exception Assertion_failure of Loc.t
exception Runtime_error of string
exception Out_of_fuel

val pp_value : Format.formatter -> value -> unit

(** Run a whole program, returning the environment of top-level values.
    [fuel] bounds evaluation steps (default one million); [quiet]
    suppresses [print_int]/[print_newline] output (default [true]). *)
val run_program : ?fuel:int -> ?quiet:bool -> Ast.program -> env
