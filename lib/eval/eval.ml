(** Reference interpreter for NanoML.

    The interpreter implements the operational semantics the type system
    is sound for: array accesses are bounds-checked ({!Bounds_violation})
    and [assert]s are checked ({!Assertion_failure}).  It is used by the
    test suite for the paper's soundness claim in executable form —
    a program accepted by the liquid verifier never raises either
    exception at runtime — and by the examples to actually run the
    benchmark workloads.

    Evaluation is big-step with a fuel budget so tests can bail out of
    accidental divergence. *)

open Liquid_common
open Liquid_lang
open Ast

type value =
  | Vint of int
  | Vbool of bool
  | Vunit
  | Vtuple of value list
  | Vlist of value list
  | Varray of value array
  | Vcon of string * value list (* user-constructor value *)
  | Vclosure of env ref * Ident.t * expr
  | Vprim of string * value list (* primitive + collected args *)

and env = value Ident.Map.t

exception Bounds_violation of string
exception Assertion_failure of Loc.t
exception Runtime_error of string
exception Out_of_fuel

let prim_arity = function
  | "Array.make" | "Array.get" | "min" | "max" -> 2
  | "Array.set" -> 3
  | "Array.length" | "abs" | "print_int" | "print_newline" | "List.length" -> 1
  | p -> raise (Runtime_error ("unknown primitive " ^ p))

let is_prim x = match prim_arity x with _ -> true | exception Runtime_error _ -> false

let rec pp_value ppf = function
  | Vint n -> Fmt.int ppf n
  | Vbool b -> Fmt.bool ppf b
  | Vunit -> Fmt.string ppf "()"
  | Vtuple vs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma pp_value) vs
  | Vlist vs -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:semi pp_value) vs
  | Vcon (c, []) -> Fmt.string ppf c
  | Vcon (c, vs) -> Fmt.pf ppf "%s (%a)" c Fmt.(list ~sep:comma pp_value) vs
  | Varray vs ->
      Fmt.pf ppf "[|%a|]" Fmt.(list ~sep:semi pp_value) (Array.to_list vs)
  | Vclosure _ -> Fmt.string ppf "<fun>"
  | Vprim (p, _) -> Fmt.pf ppf "<prim %s>" p

let apply_prim ~quiet name args =
  match (name, args) with
  | "Array.make", [ Vint n; v ] ->
      if n < 0 then raise (Bounds_violation "Array.make with negative size")
      else Varray (Array.make n v)
  | "Array.length", [ Varray a ] -> Vint (Array.length a)
  | "Array.get", [ Varray a; Vint i ] ->
      if i < 0 || i >= Array.length a then
        raise
          (Bounds_violation
             (Printf.sprintf "Array.get index %d out of bounds [0, %d)" i
                (Array.length a)))
      else a.(i)
  | "Array.set", [ Varray a; Vint i; v ] ->
      if i < 0 || i >= Array.length a then
        raise
          (Bounds_violation
             (Printf.sprintf "Array.set index %d out of bounds [0, %d)" i
                (Array.length a)))
      else begin
        a.(i) <- v;
        Vunit
      end
  | "min", [ Vint a; Vint b ] -> Vint (min a b)
  | "max", [ Vint a; Vint b ] -> Vint (max a b)
  | "abs", [ Vint a ] -> Vint (abs a)
  | "print_int", [ Vint n ] ->
      if not quiet then print_string (string_of_int n);
      Vunit
  | "print_newline", [ Vunit ] ->
      if not quiet then print_newline ();
      Vunit
  | "List.length", [ Vlist l ] -> Vint (List.length l)
  | _ -> raise (Runtime_error ("ill-typed primitive application: " ^ name))

let rec match_pat (p : pat) (v : value) : (Ident.t * value) list option =
  match (p, v) with
  | Pwild, _ -> Some []
  | Pvar x, v -> Some [ (x, v) ]
  | Punit, Vunit -> Some []
  | Pbool b, Vbool b' -> if b = b' then Some [] else None
  | Pint n, Vint n' -> if n = n' then Some [] else None
  | Ptuple ps, Vtuple vs when List.length ps = List.length vs ->
      let rec go ps vs acc =
        match (ps, vs) with
        | [], [] -> Some acc
        | p :: ps, v :: vs -> (
            match match_pat p v with
            | Some binds -> go ps vs (binds @ acc)
            | None -> None)
        | _ -> None
      in
      go ps vs []
  | Pnil, Vlist [] -> Some []
  | Pcons (p1, p2), Vlist (v :: vs) -> (
      match match_pat p1 v with
      | Some b1 -> (
          match match_pat p2 (Vlist vs) with
          | Some b2 -> Some (b1 @ b2)
          | None -> None)
      | None -> None)
  | Pnil, Vlist (_ :: _) | Pcons _, Vlist [] -> None
  | Pconstr (c, ps), Vcon (c', vs) ->
      if c <> c' then None
      else if List.length ps <> List.length vs then
        raise (Runtime_error "constructor pattern arity mismatch")
      else
        let rec go ps vs acc =
          match (ps, vs) with
          | [], [] -> Some acc
          | p :: ps, v :: vs -> (
              match match_pat p v with
              | Some binds -> go ps vs (acc @ binds)
              | None -> None)
          | _ -> None
        in
        go ps vs []
  | _ -> raise (Runtime_error "pattern/value shape mismatch")

type check_kind = Check_assert | Check_bounds

type check_hook = Loc.t -> check_kind -> ok:bool -> detail:string -> bool

type config = {
  mutable fuel : int;
  quiet : bool;
  check : check_hook option;
}

(* Primitives whose application performs a runtime safety check — the
   sites gradual casts can arm.  [Array.length] and the arithmetic
   primitives never trap. *)
let bounds_checked = function
  | "Array.get" | "Array.set" | "Array.make" -> true
  | _ -> false

let rec eval (cfg : config) (env : env) (e : expr) : value =
  if cfg.fuel <= 0 then raise Out_of_fuel;
  cfg.fuel <- cfg.fuel - 1;
  match e.desc with
  | Const (Cint n) -> Vint n
  | Const (Cbool b) -> Vbool b
  | Const Cunit -> Vunit
  | Var x -> (
      match Ident.Map.find_opt x env with
      | Some v -> v
      | None ->
          let name = Ident.to_string x in
          if is_prim name then Vprim (name, [])
          else raise (Runtime_error ("unbound variable " ^ name)))
  | Fun (x, body) -> Vclosure (ref env, x, body)
  | App (e1, e2) -> (
      let f = eval cfg env e1 in
      let a = eval cfg env e2 in
      match f with
      | Vclosure (cenv, x, body) -> eval cfg (Ident.Map.add x a !cenv) body
      | Vprim (name, args) -> (
          let args = args @ [ a ] in
          if List.length args <> prim_arity name then Vprim (name, args)
          else
            match apply_prim ~quiet:cfg.quiet name args with
            | v ->
                (match cfg.check with
                | Some h when bounds_checked name ->
                    ignore (h e.loc Check_bounds ~ok:true ~detail:"")
                | _ -> ());
                v
            | exception Bounds_violation msg ->
                (* There is no value to continue with, so the hook only
                   observes the failure (with the application's span); the
                   violation still halts evaluation. *)
                (match cfg.check with
                | Some h ->
                    ignore (h e.loc Check_bounds ~ok:false ~detail:msg)
                | None -> ());
                raise (Bounds_violation msg))
      | _ -> raise (Runtime_error "application of a non-function"))
  | Binop (op, e1, e2) -> (
      let v1 = eval cfg env e1 in
      let v2 = eval cfg env e2 in
      match (op, v1, v2) with
      | Add, Vint a, Vint b -> Vint (a + b)
      | Sub, Vint a, Vint b -> Vint (a - b)
      | Mul, Vint a, Vint b -> Vint (a * b)
      | Div, Vint a, Vint b ->
          if b = 0 then raise (Runtime_error "division by zero") else Vint (a / b)
      | Mod, Vint a, Vint b ->
          if b = 0 then raise (Runtime_error "mod by zero") else Vint (a mod b)
      | Eq, a, b -> Vbool (value_eq a b)
      | Ne, a, b -> Vbool (not (value_eq a b))
      | Lt, Vint a, Vint b -> Vbool (a < b)
      | Le, Vint a, Vint b -> Vbool (a <= b)
      | Gt, Vint a, Vint b -> Vbool (a > b)
      | Ge, Vint a, Vint b -> Vbool (a >= b)
      | _ -> raise (Runtime_error "ill-typed binary operation"))
  | Unop (Neg, e1) -> (
      match eval cfg env e1 with
      | Vint n -> Vint (-n)
      | _ -> raise (Runtime_error "negation of a non-integer"))
  | Unop (Not, e1) -> (
      match eval cfg env e1 with
      | Vbool b -> Vbool (not b)
      | _ -> raise (Runtime_error "'not' of a non-boolean"))
  | If (c, e1, e2) -> (
      match eval cfg env c with
      | Vbool true -> eval cfg env e1
      | Vbool false -> eval cfg env e2
      | _ -> raise (Runtime_error "non-boolean condition"))
  | Let (Nonrec, x, e1, e2) ->
      let v1 = eval cfg env e1 in
      eval cfg (Ident.Map.add x v1 env) e2
  | Let (Rec, x, e1, e2) -> (
      match e1.desc with
      | Fun (p, body) ->
          let cenv = ref env in
          let clo = Vclosure (cenv, p, body) in
          cenv := Ident.Map.add x clo env;
          eval cfg (Ident.Map.add x clo env) e2
      | _ -> raise (Runtime_error "let rec of a non-function"))
  | Tuple es -> Vtuple (List.map (eval cfg env) es)
  | Constr (c, es) -> Vcon (c, List.map (eval cfg env) es)
  | Nil -> Vlist []
  | Cons (e1, e2) -> (
      let v1 = eval cfg env e1 in
      match eval cfg env e2 with
      | Vlist vs -> Vlist (v1 :: vs)
      | _ -> raise (Runtime_error "cons onto a non-list"))
  | Match (scrut, cases) ->
      let v = eval cfg env scrut in
      let rec try_cases = function
        | [] -> raise (Runtime_error "match failure")
        | (p, body) :: rest -> (
            match match_pat p v with
            | Some binds ->
                let env' =
                  List.fold_left
                    (fun env (x, v) -> Ident.Map.add x v env)
                    env binds
                in
                eval cfg env' body
            | None -> try_cases rest)
      in
      try_cases cases
  | Assert e1 -> (
      match eval cfg env e1 with
      | Vbool true ->
          (match cfg.check with
          | Some h -> ignore (h e.loc Check_assert ~ok:true ~detail:"")
          | None -> ());
          Vunit
      | Vbool false ->
          let recover =
            match cfg.check with
            | Some h ->
                h e.loc Check_assert ~ok:false
                  ~detail:"assertion evaluated to false"
            | None -> false
          in
          if recover then Vunit else raise (Assertion_failure e.loc)
      | _ -> raise (Runtime_error "assert of a non-boolean"))

and value_eq a b =
  match (a, b) with
  | Vint m, Vint n -> m = n
  | Vbool m, Vbool n -> m = n
  | Vunit, Vunit -> true
  | Vtuple xs, Vtuple ys | Vlist xs, Vlist ys ->
      List.length xs = List.length ys && List.for_all2 value_eq xs ys
  | Vcon (c, xs), Vcon (c', ys) ->
      c = c'
      && List.length xs = List.length ys
      && List.for_all2 value_eq xs ys
  | Vcon _, _ | _, Vcon _ -> false
  | Varray xs, Varray ys -> xs == ys
  | _ -> raise (Runtime_error "equality on functional values")

(** Run a whole program: evaluate items in order, returning the
    environment of top-level values.  [fuel] bounds the number of
    evaluation steps (default: one million). *)
let run_program ?(fuel = 1_000_000) ?(quiet = true) ?check (prog : program) :
    env =
  let cfg = { fuel; quiet; check } in
  List.fold_left
    (fun env (item : item) ->
      let v =
        match item.rec_flag with
        | Nonrec -> eval cfg env item.body
        | Rec -> (
            match item.body.desc with
            | Fun (p, body) ->
                (* Tie the knot: the closure's environment contains the
                   closure itself under the item's name. *)
                let cenv = ref env in
                let clo = Vclosure (cenv, p, body) in
                cenv := Ident.Map.add item.name clo env;
                clo
            | _ -> raise (Runtime_error "top-level let rec of a non-function"))
      in
      Ident.Map.add item.name v env)
    Ident.Map.empty prog
